//! # sms-cli — command-line front end
//!
//! Argument parsing and command implementations for the `sms` binary.
//! Hand-rolled parsing (no CLI dependency): a handful of subcommands,
//! each with a small set of `--key value` options.
//!
//! ```text
//! sms simulate  --bench lbm_r[,mcf_r,...] --cores 8 [--policy prs|nrs] [--budget N] [--seed S] [--json] [--timeline-out FILE]
//! sms profile   --bench lbm_r[,mcf_r,...] --cores 8 [--flame out.txt] [--json]  # phase table for one run
//! sms scale     [--cores 32] [--mb-first]                 # print Table I
//! sms predict   --bench lbm_r [--target-cores 32] [--budget N] [--seed S]
//! sms trace     --bench lbm_r --out trace.smst [--instructions N] [--seed S]
//! sms bench-table                                          # characterize the suite
//! sms bench sim [--cores 8] [--threads-list 1,2,8] [--reps 3] [--out BENCH_sim.json]
//! sms bench diff [--against REV|FILE] [--threshold X]      # gate on the perf ledger
//! sms sweep     --bench lbm_r[,mcf_r,...] [--target-cores 32] [--threads T] [--sim-threads K] [--results DIR] [--timelines] [--profile] [--spans]
//! sms explore   --spec machine.toml [--label L] [--no-prune] [--results DIR] [--threads T] [--profile]
//! sms machine show --spec machine.toml [--json]             # resolve & render a machine spec
//! sms machine validate --spec machine.toml                  # validate a spec and count grid points
//! sms resume    --label L [--results DIR] [--threads T]     # continue an interrupted sweep or explore
//! sms fsck      [--results DIR]                             # verify & repair the result cache
//! sms quarantine [--results DIR] [--clear]                  # list / release quarantined runs
//! sms manifest  --path results/cache/manifests/LABEL.json  # inspect a run manifest
//! sms timeline  --path results/cache/timelines/HASH.json [--csv]  # per-epoch view of a run
//! sms train     [--bench ...] [--target-cores 32] [--kind svm] [--curve log] [--save]
//! sms models    [--results DIR]                             # list saved artifacts
//! sms serve     [--addr 127.0.0.1:8080] [--workers 4] [--request-timeout-ms 5000] [--results DIR]
//! sms lint      [--root DIR] [--format text|json] [--baseline FILE | --write-baseline FILE]
//! ```

#![forbid(unsafe_code)]
use std::collections::BTreeMap;
use std::path::Path;

use sms_bench::telemetry::mix_label;
use sms_bench::{
    cache_key, execute_plan, execute_plan_with_profiles, execute_plan_with_timelines, fsck,
    journal_path, key_hash_hex, profiles_dir, replay, timelines_dir, CachedSim, JournalLine,
    PlanHeader, PlanJournal, QuarantineRecord, RunManifest, TimelineFile, JOURNAL_SCHEMA_VERSION,
    TIMELINE_SCHEMA_VERSION,
};
use sms_core::artifact::train_artifact;
use sms_core::pipeline::{homogeneous_plan, mean_bandwidth, mean_ipc, DirectSim, ExperimentConfig};
use sms_core::predictor::{MlKind, ModelParams};
use sms_core::scaling::{scale_config, scale_table, target_config, MemBwScaling, ScalingPolicy};
use sms_core::session::ScaleModelSession;
use sms_explore::{
    run_explore, ExploreError, ExploreOutcome, ExploreParams, MachineSpec, PruneParams,
    ResolvedExplore,
};
use sms_ml::fit::CurveModel;
use sms_serve::{models_dir, serve, ModelRegistry, ServerConfig, MAX_DEADLINE_MS, MIN_DEADLINE_MS};
use sms_sim::config::SystemConfig;
use sms_sim::system::{MulticoreSystem, RunSpec};
use sms_sim::{EpochSample, RecordingSink, SimResult, SimTimeline};
use sms_workloads::mix::MixSpec;
use sms_workloads::spec::{by_name, suite};
use sms_workloads::trace_io::RecordedTrace;

/// Schema version of the `BENCH_sim.json` artifact written by
/// `sms bench sim`. Bump on any key change.
///
/// v2 adds `git_rev` and a `trajectory` array: re-running against an
/// existing artifact folds its previous measurement into the trajectory
/// (oldest first, capped at [`SIM_BENCH_TRAJECTORY_CAP`]), so a committed
/// `BENCH_sim.json` accumulates a speed history across revisions. v1
/// files (no trajectory) still load: they fold in as one trajectory
/// entry with `git_rev` `"unknown"`.
pub const SIM_BENCH_SCHEMA_VERSION: u32 = 2;

/// Most trajectory entries a `BENCH_sim.json` retains (oldest dropped
/// first) so the committed artifact cannot grow without bound.
pub const SIM_BENCH_TRAJECTORY_CAP: usize = 30;

/// Schema version of one line of the append-only `sms bench sim`
/// performance ledger at `<results>/cache/bench/history.jsonl`. Each
/// line is a host-fingerprinted record (cpu count, target triple, git
/// revision) of one benchmark invocation; `sms bench diff` compares the
/// newest record against a baseline and gates CI on regressions.
pub const BENCH_HISTORY_SCHEMA_VERSION: u32 = 1;

/// A parsed command line: subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand name.
    pub command: String,
    /// `--key value` pairs; bare `--flag`s map to `"true"`. A sorted map
    /// so any diagnostic listing of options is deterministic.
    pub options: BTreeMap<String, String>,
}

/// Errors from parsing or running a command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// No subcommand given.
    NoCommand,
    /// Unknown subcommand.
    UnknownCommand(String),
    /// A required option is missing.
    MissingOption(&'static str),
    /// An option value failed to parse.
    BadValue(String, String),
    /// Unknown benchmark name.
    UnknownBenchmark(String),
    /// Simulation failed.
    Sim(String),
    /// A machine spec failed to load, validate, or explore; the payload
    /// is the already-rendered (possibly multi-line) diagnostic.
    Spec(String),
    /// I/O failure.
    Io(String),
    /// `sms lint` found violations; the payload is the rendered report
    /// (printed to stdout by the binary, which then exits non-zero).
    Lint(String),
    /// `sms bench diff` found a performance regression; the payload is
    /// the rendered comparison (the binary prints it and exits non-zero
    /// so CI can gate on the perf ledger).
    Regression(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoCommand => {
                write!(f, "no command given; commands: {}", COMMANDS.join(", "))
            }
            Self::UnknownCommand(c) => {
                write!(
                    f,
                    "unknown command `{c}`; commands: {} (see `sms help`)",
                    COMMANDS.join(", ")
                )
            }
            Self::MissingOption(o) => write!(f, "missing required option --{o}"),
            Self::BadValue(k, v) => write!(f, "cannot parse --{k} value `{v}`"),
            Self::UnknownBenchmark(b) => {
                write!(
                    f,
                    "unknown benchmark `{b}`; see `sms bench-table` for names"
                )
            }
            Self::Sim(e) => write!(f, "simulation failed: {e}"),
            Self::Spec(e) => write!(f, "{e}"),
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Lint(report) => write!(f, "{report}"),
            Self::Regression(report) => write!(f, "{report}"),
        }
    }
}

impl std::error::Error for CliError {}

impl Args {
    /// Parse a raw argument vector (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`CliError::NoCommand`] on an empty vector.
    pub fn parse(raw: &[String]) -> Result<Self, CliError> {
        let mut command = raw.first().ok_or(CliError::NoCommand)?.clone();
        let mut i = 1;
        // Two-word subcommands ("bench sim"): merge the next bare word
        // when the combination names a known command.
        if let Some(sub) = raw.get(1).filter(|s| !s.starts_with("--")) {
            let two = format!("{command} {sub}");
            if COMMANDS.contains(&two.as_str()) {
                command = two;
                i = 2;
            }
        }
        let mut options = BTreeMap::new();
        while i < raw.len() {
            let arg = &raw[i];
            if let Some(key) = arg.strip_prefix("--") {
                let value = raw.get(i + 1);
                match value {
                    Some(v) if !v.starts_with("--") => {
                        options.insert(key.to_owned(), v.clone());
                        i += 2;
                    }
                    _ => {
                        options.insert(key.to_owned(), "true".to_owned());
                        i += 1;
                    }
                }
            } else {
                return Err(CliError::BadValue("<positional>".into(), arg.clone()));
            }
        }
        Ok(Self { command, options })
    }

    fn get_u64(&self, key: &str, default: u64) -> Result<u64, CliError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::BadValue(key.to_owned(), v.clone())),
        }
    }

    fn get_u32(&self, key: &str, default: u32) -> Result<u32, CliError> {
        let wide = self.get_u64(key, u64::from(default))?;
        u32::try_from(wide).map_err(|_| CliError::BadValue(key.to_owned(), wide.to_string()))
    }

    fn get_usize(&self, key: &str, default: usize) -> Result<usize, CliError> {
        let wide = self.get_u64(key, default as u64)?;
        usize::try_from(wide).map_err(|_| CliError::BadValue(key.to_owned(), wide.to_string()))
    }

    fn get_f64(&self, key: &str, default: f64) -> Result<f64, CliError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::BadValue(key.to_owned(), v.clone())),
        }
    }

    fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }
}

/// Run a parsed command, returning the text to print.
///
/// # Errors
///
/// Returns a [`CliError`] describing any parse, lookup, simulation or I/O
/// failure; the caller prints it and exits non-zero.
pub fn run(args: &Args) -> Result<String, CliError> {
    match args.command.as_str() {
        "simulate" => cmd_simulate(args),
        "profile" => cmd_profile(args),
        "scale" => cmd_scale(args),
        "predict" => cmd_predict(args),
        "trace" => cmd_trace(args),
        "bench-table" => cmd_bench_table(args),
        "bench sim" => cmd_bench_sim(args),
        "bench diff" => cmd_bench_diff(args),
        "sweep" => cmd_sweep(args),
        "explore" => cmd_explore(args),
        "machine show" => cmd_machine_show(args),
        "machine validate" => cmd_machine_validate(args),
        "resume" => cmd_resume(args),
        "fsck" => cmd_fsck(args),
        "quarantine" => cmd_quarantine(args),
        "manifest" => cmd_manifest(args),
        "timeline" => cmd_timeline(args),
        "train" => cmd_train(args),
        "models" => cmd_models(args),
        "serve" => cmd_serve(args),
        "lint" => cmd_lint(args),
        "help" | "--help" | "-h" => Ok(HELP.to_owned()),
        other => Err(CliError::UnknownCommand(other.to_owned())),
    }
}

/// Every subcommand the `sms` binary understands, in help order. Both the
/// help text and the unknown-command error enumerate this list.
pub const COMMANDS: &[&str] = &[
    "simulate",
    "profile",
    "scale",
    "predict",
    "trace",
    "bench-table",
    "bench sim",
    "bench diff",
    "sweep",
    "explore",
    "machine show",
    "machine validate",
    "resume",
    "fsck",
    "quarantine",
    "manifest",
    "timeline",
    "train",
    "models",
    "serve",
    "lint",
    "help",
];

/// Help text.
pub const HELP: &str = "\
sms — scale-model architectural simulation

USAGE:
  sms simulate --bench NAME[,NAME...] --cores N [--policy prs|nrs] [--budget N] [--seed S] [--json]
               [--sim-threads K] [--timeline-out FILE] [--machine FILE]
      Simulate a multiprogram mix on an N-core PRS/NRS machine (repeat
      a single name to fill all cores) and print per-core results. With
      --machine FILE, load the machine geometry (and the default mix,
      seed, and budget) from a spec file instead; --cores,
      --target-cores, and --policy then conflict with the spec. With
      --timeline-out, also record per-sync-window samples (IPC, LLC,
      NoC, DRAM) and write them as a timeline file for `sms timeline`.
      --sim-threads K runs each sync window's cores on K worker threads;
      results are bit-identical to --sim-threads 1.

  sms profile --bench NAME[,NAME...] --cores N [--budget N] [--seed S]
              [--sim-threads K] [--machine FILE] [--flame FILE] [--json]
      Run one simulation (same inputs as `sms simulate`) with the phase
      profiler attached and print a phase table — count, total and self
      time per phase (core.step, l2, llc, noc, dram, window.fork,
      window.merge) — plus the share of wall time attributed to phase
      self-times. With --flame FILE, also write collapsed-stack lines
      (render with flamegraph.pl or speedscope); with --json, print the
      profile as JSON instead of the table. Profiling is observation
      only: results stay bit-identical with the profiler attached.

  sms scale [--cores N] [--mb-first]
      Print the Table-I scale-model resource ladder for an N-core target.

  sms predict --bench NAME [--target-cores N] [--budget N] [--seed S] [--ml]
      Predict the benchmark's per-core IPC on the target from a
      single-core scale-model run. With --ml, first trains the paper's
      SVM-log regression on the other 28 benchmarks (one-time cost of
      a few minutes) instead of using the raw scale-model IPC.

  sms trace --bench NAME --out FILE [--instructions N] [--seed S]
      Record a micro-op trace to FILE (.smst binary format).

  sms bench-table [--budget N]
      Characterize all 29 benchmarks on the single-core scale model.

  sms bench sim [--cores N] [--budget N] [--reps R] [--threads-list T1,T2,...]
                [--quantum Q] [--seed S] [--out FILE] [--check-speedup X]
                [--results DIR]
      Benchmark the windowed simulator's intra-run parallelism: run the
      same N-core mix at each sim-thread count, verify every parallel
      run is bit-identical to the 1-thread baseline (result and epoch
      stream), and write p50/p95 wall times plus speedup-vs-1-thread to
      FILE (default BENCH_sim.json, schema-versioned, sorted keys; an
      existing artifact's measurement folds into the file's trajectory
      array so a committed copy accumulates a speed history). Every
      invocation also appends a host-fingerprinted record (cpu count,
      target triple, git rev) to the append-only performance ledger at
      DIR/cache/bench/history.jsonl for `sms bench diff`. With
      --check-speedup X, exit non-zero unless the best parallel speedup
      reaches X (use a lenient X on small machines or CI).

  sms bench diff [--against REV|FILE] [--threshold X] [--results DIR]
      Compare the newest record of the DIR/cache/bench/history.jsonl
      performance ledger against a baseline: by default the most recent
      earlier record from the same host fingerprint (falling back to
      the immediately preceding record); with --against, the newest
      earlier record whose git revision starts with REV, or a JSON FILE
      carrying an `entries` array (a ledger record or a committed
      BENCH_sim.json). Exits non-zero when any sim-thread count's p50
      wall time regresses by more than X (default 0.15, i.e. 15%) plus
      the measured rep-to-rep noise ((p95-p50)/p50), so CI can gate on
      it without flaking on shared runners.

  sms sweep --bench NAME[,NAME...] [--target-cores N] [--budget N] [--seed S]
            [--threads T] [--sim-threads K] [--results DIR] [--label L]
            [--timelines] [--profile] [--spans]
      Run the full scale-model ladder (1..N cores) for each benchmark
      through the fault-tolerant parallel executor: results are cached
      under DIR/cache, failing runs are retried then quarantined, and a
      JSON run manifest is written under DIR/cache/manifests/. With
      --timelines, every simulated run also leaves a per-epoch timeline
      under DIR/cache/timelines/. With --profile, every simulated run
      leaves a phase profile under DIR/cache/profiles/ and the sweep's
      aggregate profile is embedded in the manifest (mutually exclusive
      with --timelines). With --spans, executor spans are
      recorded and flushed as Chrome trace-event JSON under
      DIR/cache/traces/ (open at chrome://tracing or Perfetto). The plan
      parameters and every completed run are journaled (fsync'd) under
      DIR/cache/journal/LABEL.jsonl, so a killed sweep is resumable.
      --threads T parallelizes across runs; --sim-threads K additionally
      parallelizes the cores inside each run (bit-identical results, so
      cache keys and journals are unchanged).

  sms explore --spec FILE [--label L] [--results DIR] [--threads T] [--sim-threads K]
              [--no-prune] [--prune-seed S] [--bootstrap F] [--margin M] [--profile]
      Run the spec's [grid] design-space sweep through the fault-tolerant
      executor and print the Pareto front (throughput vs LLC capacity vs
      core count). Results are cached, journaled (so a killed explore is
      resumable with `sms resume`), and summarized in a canonical-JSON
      manifest under DIR/cache/explore/L.json. By default a seeded
      bootstrap sample is evaluated first, an sms-ml random forest is
      trained on it, and points whose predicted throughput is dominated
      with margin M (default 0.10) by an observed no-more-expensive point
      are skipped; every skip and a holdout predicted-vs-actual audit
      land in the manifest. --no-prune evaluates every point. With
      --profile, each simulated run leaves a phase profile under
      DIR/cache/profiles/ and every evaluated point in the manifest
      carries its per-phase host-time attribution.

  sms machine show --spec FILE [--json]
      Load a machine spec (TOML subset, or JSON with a .json extension),
      resolve defaults, and render it back as TOML (or canonical JSON
      with --json). The rendering round-trips through `sms machine
      validate`.

  sms machine validate --spec FILE
      Validate a machine spec, reporting every field-level problem with
      its dotted path, and print the machine summary plus the number of
      design points the [grid] section expands to.

  sms resume --label L [--results DIR] [--threads T] [--sim-threads K]
      Continue an interrupted `sms sweep` or `sms explore`: replay the
      label's plan journal, rebuild the identical plan from its recorded
      header, and re-execute it. Cached runs are skipped and quarantined
      runs are retried, so repeating resume after crashes converges on
      the same final cache (and, for explore, a bit-identical manifest)
      as one uninterrupted run.

  sms fsck [--results DIR]
      Verify every result-cache file under DIR/cache: cache entries
      (JSON shape, key-hash filename, payload checksum), quarantine
      records, manifests, timelines, leftover temp files, and plan
      journals. Defective files are evicted (journals: repaired in
      place) and reported; valid entries are never touched.

  sms quarantine [--results DIR] [--clear]
      List the quarantine records left by persistently failing runs.
      With --clear, release them so the next sweep or resume retries
      those runs.

  sms manifest --path FILE
      Pretty-print a JSON run manifest written by `sms sweep` or the
      bench experiment executor, including its metrics-registry snapshot.

  sms timeline --path FILE [--csv]
      Render a timeline file (per-epoch IPC, LLC hit rate and occupancy,
      NoC traffic, DRAM bandwidth and queue depth) as a table, or as CSV
      with --csv.

  sms train [--bench NAME[,NAME...]] [--target-cores N] [--budget N] [--seed S]
            [--kind svm|dt|rf|krr] [--curve log|linear|power] [--name NAME]
            [--results DIR] [--save]
      Train the paper's ML-based Regression on the scale-model ladder
      (benchmarks default to the full 29-entry suite) and report its
      leave-one-out cross-validation error. With --save, persist the
      trained model as a versioned, checksummed JSON artifact under
      DIR/cache/models/ for `sms serve`.

  sms models [--results DIR]
      List the model artifacts saved under DIR/cache/models/.

  sms serve [--addr HOST:PORT] [--workers N] [--request-timeout-ms MS]
            [--results DIR]
      Serve saved model artifacts over HTTP (no simulation at request
      time): POST /predict, GET /models, GET /healthz, GET /metrics,
      POST /shutdown. Requests are batched per model, memoized in an
      LRU cache, and shed with 503 when the queue is full. Every request
      carries a deadline (--request-timeout-ms, 10..=60000, default
      5000; per-request override via the x-sms-deadline-ms header) and
      answers 504 once it expires. Per-model circuit breakers serve a
      degraded analytic fallback (x-sms-degraded: 1) while the ML
      predictor is failing. Stop with POST /shutdown or by typing `q`
      on stdin.

  sms lint [--root DIR] [--format text|json]
           [--baseline FILE | --write-baseline FILE]
      Run the workspace invariant checker (sms-lint) over DIR (default:
      the current directory): determinism rules D1-D3, error-discipline
      rules E1-E2, metric naming O1, failpoint hygiene F1, and
      concurrency rules C1-C4 (lock-order cycles, Relaxed-ordering
      discipline, hang-prone blocking, CONCURRENCY.md inventory).
      Prints one finding per line (or a machine-readable JSON report
      with --format json) and exits non-zero when any finding survives
      its `sms-lint: allow` annotations. --write-baseline records the
      surviving findings to FILE; --baseline demotes findings recorded
      in FILE to warn-only so new rules can land without breaking
      downstream forks.

  sms help
      Print this help.
";

/// The target core count actually simulated for a `--target-cores`
/// request: at least the scale-model core count, rounded up to a power
/// of two.
fn effective_target_cores(requested: u32, cores: u32) -> u32 {
    requested.max(cores).next_power_of_two()
}

/// Build the machine for `--cores`/`--target-cores`/`--policy`. The
/// second element is a one-line notice when the requested target was
/// adjusted (previously this rounding was silent).
fn machine_for(args: &Args, cores: u32) -> Result<(SystemConfig, Option<String>), CliError> {
    let requested = args.get_u32("target-cores", 32.max(cores))?;
    let effective = effective_target_cores(requested, cores);
    let notice = (effective != requested).then(|| {
        format!(
            "note: --target-cores {requested} adjusted to {effective} \
             (at least --cores, rounded up to a power of two)"
        )
    });
    let target = target_config(effective);
    let policy = match args.options.get("policy").map(String::as_str) {
        None | Some("prs") => ScalingPolicy::prs(),
        Some("nrs") => ScalingPolicy::nrs(),
        Some(other) => return Err(CliError::BadValue("policy".into(), other.to_owned())),
    };
    let machine = if cores == target.num_cores {
        target
    } else {
        scale_config(&target, cores, policy)
    };
    Ok((machine, notice))
}

fn spec_for(args: &Args) -> Result<RunSpec, CliError> {
    let budget = args.get_u64("budget", 500_000)?;
    Ok(RunSpec::with_default_warmup(budget))
}

/// The simulate inputs: machine, mix, run spec, and any notices to
/// prepend to the output. Either derived from `--machine FILE` (a spec
/// file supplies machine geometry plus workload defaults) or from the
/// classic `--cores`/`--target-cores`/`--policy` flags.
fn simulate_setup(args: &Args) -> Result<(SystemConfig, MixSpec, RunSpec, String), CliError> {
    if let Some(path) = args.options.get("machine") {
        for conflict in ["cores", "target-cores", "policy"] {
            if args.options.contains_key(conflict) {
                return Err(CliError::Spec(format!(
                    "--{conflict} conflicts with --machine (the spec file fixes the machine)"
                )));
            }
        }
        let spec = MachineSpec::load(Path::new(path)).map_err(|e| CliError::Spec(e.to_string()))?;
        let names: Vec<String> = match args.options.get("bench") {
            Some(bench) => bench.split(',').map(str::to_owned).collect(),
            None => spec
                .workloads
                .mixes
                .first()
                .cloned()
                .ok_or(CliError::MissingOption("bench"))?,
        };
        for n in &names {
            if by_name(n).is_none() {
                return Err(CliError::UnknownBenchmark(n.clone()));
            }
        }
        let seed = args.get_u64("seed", spec.workloads.seed)?;
        let budget = args.get_u64("budget", spec.workloads.budget)?;
        let mix = MixSpec::fill(&names, spec.machine.num_cores as usize, seed);
        let notice = format!("machine spec: {} ({path})\n", spec.name);
        return Ok((
            spec.machine,
            mix,
            RunSpec::with_default_warmup(budget),
            notice,
        ));
    }

    let bench = args
        .options
        .get("bench")
        .ok_or(CliError::MissingOption("bench"))?;
    let cores = args.get_u32("cores", 1)?;
    if cores == 0 || !cores.is_power_of_two() || cores > 256 {
        return Err(CliError::BadValue("cores".into(), cores.to_string()));
    }
    let seed = args.get_u64("seed", 43)?;

    let names: Vec<String> = bench.split(',').map(str::to_owned).collect();
    for n in &names {
        if by_name(n).is_none() {
            return Err(CliError::UnknownBenchmark(n.clone()));
        }
    }
    let mix = MixSpec::fill(&names, cores as usize, seed);
    let (machine, notice) = machine_for(args, cores)?;
    let notes = notice.map(|n| format!("{n}\n")).unwrap_or_default();
    Ok((machine, mix, spec_for(args)?, notes))
}

fn cmd_simulate(args: &Args) -> Result<String, CliError> {
    let (mut machine, mix, spec, notes) = simulate_setup(args)?;
    let cores = machine.num_cores;
    machine.sim_threads = args.get_u32("sim-threads", 1)?;
    let mut sys = MulticoreSystem::new(machine.clone(), mix.sources())
        .map_err(|e| CliError::Sim(e.to_string()))?;
    let mut timeline_note = String::new();
    let r = if let Some(out_path) = args.options.get("timeline-out") {
        let mut sink = RecordingSink::new();
        let r = sys
            .run_with_sink(spec, &mut sink)
            .map_err(|e| CliError::Sim(e.to_string()))?;
        let file = TimelineFile {
            schema_version: TIMELINE_SCHEMA_VERSION,
            key_hash: key_hash_hex(&cache_key(&machine, &mix, spec)),
            mix: mix_label(&mix),
            cores,
            timeline: SimTimeline {
                sync_quantum: machine.sync_quantum,
                num_cores: machine.num_cores,
                samples: sink.into_samples(),
            },
            registry: serde_json::from_str(&sms_obs::registry().to_json()).ok(),
        };
        file.save(out_path)
            .map_err(|e| CliError::Io(e.to_string()))?;
        timeline_note = format!(
            "\ntimeline: {} epochs written to {out_path} (render with `sms timeline --path {out_path}`)",
            file.timeline.samples.len()
        );
        r
    } else {
        sys.run(spec).map_err(|e| CliError::Sim(e.to_string()))?
    };

    if args.flag("json") {
        return serde_json::to_string_pretty(&r).map_err(|e| CliError::Io(e.to_string()));
    }
    Ok(format!(
        "{notes}machine: {}\n{r}{timeline_note}",
        machine.summary()
    ))
}

fn cmd_profile(args: &Args) -> Result<String, CliError> {
    let (mut machine, mix, spec, notes) = simulate_setup(args)?;
    machine.sim_threads = args.get_u32("sim-threads", 1)?;
    let profiler = sms_obs::Profiler::new();
    let mut sys = MulticoreSystem::new(machine.clone(), mix.sources())
        .map_err(|e| CliError::Sim(e.to_string()))?;
    sys.attach_profiler(&profiler);
    // Wall time around the whole run (warm-up included) so the coverage
    // line compares the profile against what a stopwatch would see. The
    // CLI is not a deterministic crate (lint rule D1 does not apply);
    // the clock never feeds simulated state.
    let wall = std::time::Instant::now();
    let r = sys.run(spec).map_err(|e| CliError::Sim(e.to_string()))?;
    let wall_seconds = wall.elapsed().as_secs_f64();
    let profile = profiler.snapshot();

    let mut flame_note = String::new();
    if let Some(path) = args.options.get("flame") {
        std::fs::write(path, profile.collapsed()).map_err(|e| CliError::Io(e.to_string()))?;
        flame_note = format!(
            "flame: collapsed stacks written to {path} (render with flamegraph.pl or speedscope)\n"
        );
    }
    if args.flag("json") {
        return Ok(profile.to_json());
    }
    let attributed = profile.total_self_nanos() as f64 / 1e9;
    let coverage = if wall_seconds > 0.0 {
        attributed / wall_seconds * 100.0
    } else {
        0.0
    };
    Ok(format!(
        "{notes}machine: {}\n\n{}\n\
         coverage: {coverage:.1}% of {wall_seconds:.3}s wall attributed to phase self-times\n\
         (self-times are per-thread CPU time: above 100% means parallel workers overlapped)\n\
         simulated: mean IPC {:.3} over {} core(s)\n{flame_note}",
        machine.summary(),
        profile.render_table(),
        mean_ipc(&r),
        r.cores.len(),
    ))
}

fn cmd_scale(args: &Args) -> Result<String, CliError> {
    let cores = args.get_u32("cores", 32)?;
    if !cores.is_power_of_two() || cores == 0 || cores > 256 {
        return Err(CliError::BadValue("cores".into(), cores.to_string()));
    }
    let order = if args.flag("mb-first") {
        MemBwScaling::MbFirst
    } else {
        MemBwScaling::McFirst
    };
    let target = target_config(cores);
    let mut out = format!("target: {}\n\n", target.summary());
    for row in scale_table(&target, order) {
        out.push_str(&format!(
            "{:>4} cores | LLC {:>4} MB ({} slices) | NoC {:>5.0} GB/s ({} CSLs x {:.0}) | DRAM {:>5.0} GB/s ({} MCs x {:.0})\n",
            row.cores,
            row.llc_mb,
            row.llc_slices,
            row.noc_gbps,
            row.csls,
            row.gbps_per_csl,
            row.dram_gbps,
            row.mcs,
            row.gbps_per_mc,
        ));
    }
    Ok(out)
}

fn cmd_predict(args: &Args) -> Result<String, CliError> {
    let bench = args
        .options
        .get("bench")
        .ok_or(CliError::MissingOption("bench"))?;
    let profile = by_name(bench).ok_or_else(|| CliError::UnknownBenchmark(bench.clone()))?;
    let target_cores = args.get_u32("target-cores", 32)?;
    if !target_cores.is_power_of_two() || target_cores == 0 || target_cores > 256 {
        return Err(CliError::BadValue(
            "target-cores".into(),
            target_cores.to_string(),
        ));
    }
    let seed = args.get_u64("seed", 43)?;
    let spec = spec_for(args)?;
    let target = target_config(target_cores);

    if args.flag("ml") {
        // The paper's ML-based Regression: train on every other benchmark
        // (a one-time cost in a real deployment), then predict from one
        // single-core scale-model run.
        let cfg = ExperimentConfig {
            target,
            spec,
            seed,
            ..ExperimentConfig::default()
        };
        let training: Vec<_> = suite().into_iter().filter(|p| p.name != bench).collect();
        eprintln!(
            "training SVM-log regression on {} benchmarks (one-time cost)...",
            training.len()
        );
        let session = ScaleModelSession::train(&mut DirectSim, cfg, &training)
            .map_err(|e| CliError::Sim(e.to_string()))?;
        let pred = session
            .predict(&mut DirectSim, &profile)
            .map_err(|e| CliError::Sim(e.to_string()))?;
        let series = pred
            .scale_model_ipcs
            .iter()
            .map(|(c, i)| format!("{c}:{i:.3}"))
            .collect::<Vec<_>>()
            .join(" ");
        return Ok(format!(
            "benchmark            : {bench}\n\
             scale-model IPC      : {:.4}\n\
             scale-model BW       : {:.2} GB/s\n\
             scale-model series   : {series}\n\
             SVM-log predicted per-core IPC on the {target_cores}-core target: {:.4}\n\
             scale-model simulated in {:.2}s",
            pred.ss.ipc, pred.ss.bandwidth, pred.target_ipc, pred.host_seconds,
        ));
    }

    let ss_cfg = scale_config(&target, 1, ScalingPolicy::prs());
    let mix = MixSpec::homogeneous(bench, 1, seed);
    let mut sys =
        MulticoreSystem::new(ss_cfg, mix.sources()).map_err(|e| CliError::Sim(e.to_string()))?;
    let r = sys.run(spec).map_err(|e| CliError::Sim(e.to_string()))?;

    Ok(format!(
        "benchmark            : {bench}\n\
         scale-model IPC      : {:.4}\n\
         scale-model BW       : {:.2} GB/s\n\
         predicted per-core IPC on the {target_cores}-core target: {:.4}\n\
         (No-Extrapolation; pass --ml for the paper's SVM-log regression)\n\
         scale-model simulated in {:.2}s",
        mean_ipc(&r),
        mean_bandwidth(&r),
        mean_ipc(&r),
        r.host_seconds,
    ))
}

fn cmd_trace(args: &Args) -> Result<String, CliError> {
    let bench = args
        .options
        .get("bench")
        .ok_or(CliError::MissingOption("bench"))?;
    let profile = by_name(bench).ok_or_else(|| CliError::UnknownBenchmark(bench.clone()))?;
    let out = args
        .options
        .get("out")
        .ok_or(CliError::MissingOption("out"))?;
    let instructions = args.get_u64("instructions", 1_000_000)?;
    let seed = args.get_u64("seed", 43)?;

    let mut src = sms_workloads::generator::SyntheticSource::new(profile, 0, seed);
    let trace = RecordedTrace::record(&mut src, instructions);
    trace.save(out).map_err(|e| CliError::Io(e.to_string()))?;
    Ok(format!(
        "recorded {} instructions ({} ops) of {bench} to {out}",
        trace.instructions(),
        trace.len(),
    ))
}

fn cmd_bench_table(args: &Args) -> Result<String, CliError> {
    let spec = RunSpec::with_default_warmup(args.get_u64("budget", 200_000)?);
    let target = target_config(32);
    let ss = scale_config(&target, 1, ScalingPolicy::prs());
    let mut out = format!(
        "{:<14} {:>7} {:>10} {:>9}\n",
        "benchmark", "IPC", "LLC MPKI", "BW GB/s"
    );
    for p in suite() {
        let mix = MixSpec::homogeneous(p.name, 1, 43);
        let mut sys = MulticoreSystem::new(ss.clone(), mix.sources())
            .map_err(|e| CliError::Sim(e.to_string()))?;
        let r = sys.run(spec).map_err(|e| CliError::Sim(e.to_string()))?;
        let c = &r.cores[0];
        out.push_str(&format!(
            "{:<14} {:>7.3} {:>10.2} {:>9.2}\n",
            c.label, c.ipc, c.llc_mpki, c.bandwidth_gbps
        ));
    }
    Ok(out)
}

/// One measured thread-count in a `sms bench sim` run.
struct SimBenchRow {
    sim_threads: u32,
    p50: f64,
    p95: f64,
    speedup: f64,
}

fn cmd_bench_sim(args: &Args) -> Result<String, CliError> {
    let cores = args.get_u32("cores", 8)?;
    if cores == 0 || !cores.is_power_of_two() || cores > 256 {
        return Err(CliError::BadValue("cores".into(), cores.to_string()));
    }
    let budget = args.get_u64("budget", 200_000)?;
    let reps = args.get_usize("reps", 3)?.max(1);
    let quantum = args.get_u64("quantum", 10_000)?;
    if quantum == 0 {
        return Err(CliError::BadValue("quantum".into(), quantum.to_string()));
    }
    let seed = args.get_u64("seed", 43)?;
    let out_path = args
        .options
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_sim.json".to_owned());
    let mut threads_list: Vec<u32> = match args.options.get("threads-list") {
        None => vec![1, 2, 8],
        Some(v) => v
            .split(',')
            .map(|t| {
                t.trim()
                    .parse::<u32>()
                    .ok()
                    .filter(|&t| t >= 1)
                    .ok_or_else(|| CliError::BadValue("threads-list".into(), v.clone()))
            })
            .collect::<Result<_, _>>()?,
    };
    // The single-threaded run is both the speedup baseline and the
    // bit-identity reference, so it is always measured first.
    if threads_list.first() != Some(&1) {
        threads_list.retain(|&t| t != 1);
        threads_list.insert(0, 1);
    }
    let check_speedup = args
        .options
        .get("check-speedup")
        .map(|v| {
            v.parse::<f64>()
                .map_err(|_| CliError::BadValue("check-speedup".into(), v.clone()))
        })
        .transpose()?;

    // A heterogeneous mix (the suite cycled over the cores) so the deferred
    // uncore traffic that the merge must serialize is actually varied.
    let profiles = suite();
    let benchmarks: Vec<String> = (0..cores as usize)
        .map(|i| profiles[i % profiles.len()].name.to_owned())
        .collect();
    let mix = MixSpec { benchmarks, seed };
    let mut machine = target_config(cores);
    machine.sync_quantum = quantum;
    let spec = RunSpec::with_default_warmup(budget);

    // Bit-identity reference from the 1-thread run: the result with the
    // wall-clock field zeroed (host time legitimately differs per run),
    // plus the full epoch-sample stream.
    let mut reference: Option<(SimResult, Vec<EpochSample>)> = None;
    let mut rows: Vec<SimBenchRow> = Vec::with_capacity(threads_list.len());
    for &t in &threads_list {
        machine.sim_threads = t;
        let mut walls: Vec<f64> = Vec::with_capacity(reps);
        for rep in 0..reps {
            let mut sys = MulticoreSystem::new(machine.clone(), mix.sources())
                .map_err(|e| CliError::Sim(e.to_string()))?;
            let mut sink = RecordingSink::new();
            let mut r = sys
                .run_with_sink(spec, &mut sink)
                .map_err(|e| CliError::Sim(e.to_string()))?;
            walls.push(r.host_seconds);
            if rep == 0 {
                r.host_seconds = 0.0;
                let samples = sink.into_samples();
                match &reference {
                    None => reference = Some((r, samples)),
                    Some((r0, s0)) => {
                        if r != *r0 || samples != *s0 {
                            return Err(CliError::Sim(format!(
                                "parallel run at {t} sim threads is not bit-identical \
                                 to the sequential baseline"
                            )));
                        }
                    }
                }
            }
        }
        let p = sms_bench::telemetry::percentiles(&walls)
            .ok_or_else(|| CliError::Sim("no wall-clock samples collected".to_owned()))?;
        let base_p50 = rows.first().map_or(p.p50, |r: &SimBenchRow| r.p50);
        rows.push(SimBenchRow {
            sim_threads: t,
            p50: p.p50,
            p95: p.p95,
            speedup: base_p50 / p.p50.max(1e-12),
        });
    }

    // Hand-rendered JSON with alphabetically sorted keys at every level.
    // Re-running against an existing artifact folds its measurement into
    // the trajectory (oldest first, capped), so a committed BENCH_sim.json
    // accumulates a speed history; v1 files fold in with git_rev "unknown".
    let rev = git_rev();
    let mut trajectory: Vec<String> = Vec::new();
    if let Ok(text) = std::fs::read_to_string(&out_path) {
        if let Ok(prev) = serde_json::from_str::<serde_json::Value>(&text) {
            if let Some(items) = prev.get("trajectory").and_then(|t| t.as_array()) {
                for item in items {
                    if let Ok(s) = serde_json::to_string(item) {
                        trajectory.push(s);
                    }
                }
            }
            if let Some(e) = prev.get("entries") {
                let prev_rev = prev
                    .get("git_rev")
                    .and_then(|r| r.as_str())
                    .unwrap_or("unknown");
                let mut folded = serde_json::Map::new();
                folded.insert("entries".to_owned(), e.clone());
                folded.insert(
                    "git_rev".to_owned(),
                    serde_json::Value::String(prev_rev.to_owned()),
                );
                if let Ok(s) = serde_json::to_string(&serde_json::Value::Object(folded)) {
                    trajectory.push(s);
                }
            }
        }
    }
    if trajectory.len() > SIM_BENCH_TRAJECTORY_CAP {
        trajectory.drain(..trajectory.len() - SIM_BENCH_TRAJECTORY_CAP);
    }
    let entries = rows
        .iter()
        .map(|r| format!("    {}", row_json(r)))
        .collect::<Vec<_>>()
        .join(",\n");
    let trajectory_block = if trajectory.is_empty() {
        "[]".to_owned()
    } else {
        format!(
            "[\n{}\n  ]",
            trajectory
                .iter()
                .map(|s| format!("    {s}"))
                .collect::<Vec<_>>()
                .join(",\n")
        )
    };
    let json = format!(
        "{{\n  \"budget\": {budget},\n  \"cores\": {cores},\n  \"entries\": [\n{entries}\n  ],\n  \
         \"git_rev\": \"{rev}\",\n  \"mix\": \"{}\",\n  \"quantum\": {quantum},\n  \
         \"reps\": {reps},\n  \"schema_version\": {SIM_BENCH_SCHEMA_VERSION},\n  \
         \"seed\": {seed},\n  \"trajectory\": {trajectory_block}\n}}\n",
        mix_label(&mix)
    );
    std::fs::write(&out_path, &json).map_err(|e| CliError::Io(e.to_string()))?;

    // Performance ledger: append a host-fingerprinted record for
    // `sms bench diff`. Best effort — a benchmark must not die because
    // the ledger directory is unwritable — but the outcome is reported.
    let history = bench_history_path(&results_dir(args));
    let ledger_note = match append_history_line(
        &history,
        &history_record_json(
            &rev,
            &BenchRun {
                cores,
                budget,
                quantum,
                reps,
                seed,
            },
            &rows,
        ),
    ) {
        Ok(()) => format!(
            "ledger: appended to {} (compare with `sms bench diff`)\n",
            history.display()
        ),
        Err(e) => format!("ledger: NOT appended ({e})\n"),
    };

    let mut out = format!(
        "bench sim: {cores} cores, budget {budget}, quantum {quantum}, {reps} reps\n\
         {:>11} {:>12} {:>12} {:>9}\n",
        "sim_threads", "p50 (s)", "p95 (s)", "speedup"
    );
    for r in &rows {
        out.push_str(&format!(
            "{:>11} {:>12.6} {:>12.6} {:>8.2}x\n",
            r.sim_threads, r.p50, r.p95, r.speedup
        ));
    }
    out.push_str(&format!(
        "bit-identity: OK across all thread counts\nwritten: {out_path}\n{ledger_note}"
    ));
    if let Some(min) = check_speedup {
        let best = rows
            .iter()
            .filter(|r| r.sim_threads > 1)
            .map(|r| r.speedup)
            .fold(f64::NEG_INFINITY, f64::max);
        if best.is_finite() && best < min {
            return Err(CliError::Sim(format!(
                "best parallel speedup {best:.2}x is below the --check-speedup floor {min:.2}x"
            )));
        }
    }
    Ok(out)
}

/// The non-row parameters of one `sms bench sim` invocation, as
/// recorded in the performance ledger.
struct BenchRun {
    cores: u32,
    budget: u64,
    quantum: u64,
    reps: usize,
    seed: u64,
}

/// One measured row as a compact sorted-key JSON object (shared by the
/// `BENCH_sim.json` artifact and the ledger).
fn row_json(r: &SimBenchRow) -> String {
    format!(
        "{{\"p50_wall_seconds\":{:.6},\"p95_wall_seconds\":{:.6},\
         \"sim_threads\":{},\"speedup_vs_1_thread\":{:.4}}}",
        r.p50, r.p95, r.sim_threads, r.speedup
    )
}

/// The current git revision (12-hex short form): `GITHUB_SHA` when CI
/// provides it, otherwise `git rev-parse`; `"unknown"` outside a
/// repository.
fn git_rev() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        let trimmed = sha.trim().to_owned();
        if trimmed.len() >= 12 && trimmed.is_ascii() {
            return trimmed[..12].to_owned();
        }
        if !trimmed.is_empty() {
            return trimmed;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Host fingerprint for ledger records: logical cpu count plus a target
/// approximation (`arch-os`). `sms bench diff` auto-selects baselines
/// only from records with a matching fingerprint, so numbers from a
/// laptop never gate a CI runner.
fn host_fingerprint() -> (usize, String) {
    let cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    (
        cpus,
        format!("{}-{}", std::env::consts::ARCH, std::env::consts::OS),
    )
}

/// The append-only performance ledger under a results directory.
fn bench_history_path(results: &str) -> std::path::PathBuf {
    Path::new(results)
        .join("cache")
        .join("bench")
        .join("history.jsonl")
}

/// Append one ledger line, fsync'd — the journal idiom: a crash may
/// lose the trailing line but never corrupts earlier ones.
fn append_history_line(path: &Path, line: &str) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    f.write_all(line.as_bytes())?;
    f.write_all(b"\n")?;
    f.sync_data()
}

/// One ledger record as a single sorted-key JSON line.
fn history_record_json(rev: &str, run: &BenchRun, rows: &[SimBenchRow]) -> String {
    let (host_cpus, target) = host_fingerprint();
    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let entries = rows.iter().map(row_json).collect::<Vec<_>>().join(",");
    format!(
        "{{\"budget\":{},\"cores\":{},\"entries\":[{entries}],\"git_rev\":\"{rev}\",\
         \"host_cpus\":{host_cpus},\"quantum\":{},\"reps\":{},\
         \"schema_version\":{BENCH_HISTORY_SCHEMA_VERSION},\"seed\":{},\
         \"target\":\"{target}\",\"unix_ms\":{unix_ms}}}",
        run.budget, run.cores, run.quantum, run.reps, run.seed
    )
}

/// One parsed ledger record (or an `--against FILE` baseline).
#[derive(Clone)]
struct HistoryRecord {
    git_rev: String,
    host_cpus: u64,
    target: String,
    cores: u64,
    entries: Vec<HistoryEntry>,
}

/// One measured thread count inside a [`HistoryRecord`].
#[derive(Clone)]
struct HistoryEntry {
    sim_threads: u64,
    p50: f64,
    p95: f64,
}

fn parse_history_entries(v: &serde_json::Value) -> Vec<HistoryEntry> {
    v.get("entries")
        .and_then(|e| e.as_array())
        .map(|items| {
            items
                .iter()
                .filter_map(|item| {
                    Some(HistoryEntry {
                        sim_threads: item.get("sim_threads")?.as_u64()?,
                        p50: item.get("p50_wall_seconds")?.as_f64()?,
                        p95: item.get("p95_wall_seconds")?.as_f64()?,
                    })
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Parse a ledger line or an `--against` file. Accepts anything with a
/// well-formed `entries` array — a history record, a v1 or v2
/// `BENCH_sim.json` — so a committed artifact works as a baseline.
fn parse_history_record(v: &serde_json::Value) -> Option<HistoryRecord> {
    let entries = parse_history_entries(v);
    if entries.is_empty() {
        return None;
    }
    Some(HistoryRecord {
        git_rev: v
            .get("git_rev")
            .and_then(|r| r.as_str())
            .unwrap_or("unknown")
            .to_owned(),
        host_cpus: v
            .get("host_cpus")
            .and_then(serde_json::Value::as_u64)
            .unwrap_or(0),
        target: v
            .get("target")
            .and_then(|t| t.as_str())
            .unwrap_or("")
            .to_owned(),
        cores: v
            .get("cores")
            .and_then(serde_json::Value::as_u64)
            .unwrap_or(0),
        entries,
    })
}

fn cmd_bench_diff(args: &Args) -> Result<String, CliError> {
    let threshold = args.get_f64("threshold", 0.15)?;
    if !(0.0..10.0).contains(&threshold) {
        return Err(CliError::BadValue(
            "threshold".into(),
            threshold.to_string(),
        ));
    }
    let history = bench_history_path(&results_dir(args));
    let text = std::fs::read_to_string(&history).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            CliError::Io(format!(
                "no performance ledger at {} — run `sms bench sim` first",
                history.display()
            ))
        } else {
            CliError::Io(e.to_string())
        }
    })?;
    // Unreadable lines (a crash mid-append leaves at most one, at the
    // tail) are skipped, exactly like plan-journal replay.
    let records: Vec<HistoryRecord> = text
        .lines()
        .filter_map(|l| serde_json::from_str::<serde_json::Value>(l).ok())
        .filter_map(|v| parse_history_record(&v))
        .collect();
    let current = records.last().ok_or_else(|| {
        CliError::Io(format!(
            "performance ledger {} has no readable records — run `sms bench sim` first",
            history.display()
        ))
    })?;
    let earlier = &records[..records.len() - 1];

    let (baseline, baseline_label): (HistoryRecord, String) = match args.options.get("against") {
        Some(v) if Path::new(v).is_file() => {
            let text = std::fs::read_to_string(v).map_err(|e| CliError::Io(e.to_string()))?;
            let value: serde_json::Value = serde_json::from_str(&text)
                .map_err(|e| CliError::Io(format!("cannot parse --against file {v}: {e}")))?;
            let rec = parse_history_record(&value).ok_or_else(|| {
                CliError::Io(format!("--against file {v} has no readable entries array"))
            })?;
            (rec, format!("file {v}"))
        }
        Some(rev) => {
            let rec = earlier
                .iter()
                .rev()
                .find(|r| r.git_rev.starts_with(rev.as_str()))
                .ok_or_else(|| {
                    CliError::Io(format!(
                        "no earlier ledger record matches revision `{rev}` \
                         (and `{rev}` is not a readable file)"
                    ))
                })?;
            (rec.clone(), format!("rev {}", rec.git_rev))
        }
        None => {
            if earlier.is_empty() {
                return Ok(format!(
                    "bench diff: only one record in {}; nothing to compare yet\n",
                    history.display()
                ));
            }
            // Prefer the newest earlier record from the same host and
            // machine size; fall back to the immediately preceding one.
            let rec = earlier
                .iter()
                .rev()
                .find(|r| {
                    r.host_cpus == current.host_cpus
                        && r.target == current.target
                        && r.cores == current.cores
                })
                .unwrap_or(&earlier[earlier.len() - 1]);
            (rec.clone(), format!("rev {}", rec.git_rev))
        }
    };

    let mut out = format!(
        "bench diff: current rev {} vs baseline {} (threshold {:.0}%, noise-aware)\n\
         {:>11} {:>12} {:>12} {:>7} {:>8}  verdict\n",
        current.git_rev,
        baseline_label,
        threshold * 100.0,
        "sim_threads",
        "base p50(s)",
        "cur p50(s)",
        "ratio",
        "allowed",
    );
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for cur in &current.entries {
        let Some(base) = baseline
            .entries
            .iter()
            .find(|b| b.sim_threads == cur.sim_threads)
        else {
            continue;
        };
        if base.p50 <= 0.0 {
            continue;
        }
        compared += 1;
        // The gate widens by the worse rep-to-rep spread of the two
        // records: a wall-time delta inside observed measurement noise
        // is never called a regression.
        let noise = ((base.p95 - base.p50) / base.p50)
            .max((cur.p95 - cur.p50) / cur.p50.max(1e-12))
            .max(0.0);
        let allowed = 1.0 + threshold + noise;
        let ratio = cur.p50 / base.p50;
        let regressed = ratio > allowed;
        if regressed {
            regressions += 1;
        }
        out.push_str(&format!(
            "{:>11} {:>12.6} {:>12.6} {:>6.2}x {:>7.2}x  {}\n",
            cur.sim_threads,
            base.p50,
            cur.p50,
            ratio,
            allowed,
            if regressed { "REGRESSED" } else { "ok" }
        ));
    }
    if compared == 0 {
        return Err(CliError::Io(
            "baseline and current records share no sim_threads entries — nothing comparable"
                .to_owned(),
        ));
    }
    if regressions > 0 {
        out.push_str(&format!(
            "{regressions} of {compared} thread count(s) regressed beyond threshold + noise\n"
        ));
        return Err(CliError::Regression(out));
    }
    out.push_str(&format!(
        "no regression across {compared} thread count(s)\n"
    ));
    Ok(out)
}

/// Concrete sweep parameters: parsed from `sms sweep` flags, or rebuilt
/// from a journaled [`PlanHeader`] by `sms resume`.
struct SweepParams {
    bench: String,
    target_cores: u32,
    budget: u64,
    seed: u64,
    threads: usize,
    sim_threads: u32,
    results: String,
    label: String,
    timelines: bool,
    profile: bool,
    spans: bool,
}

fn run_sweep(p: &SweepParams) -> Result<String, CliError> {
    if !p.target_cores.is_power_of_two() || p.target_cores == 0 || p.target_cores > 256 {
        return Err(CliError::BadValue(
            "target-cores".into(),
            p.target_cores.to_string(),
        ));
    }
    let profiles: Vec<_> = p
        .bench
        .split(',')
        .map(|n| by_name(n).ok_or_else(|| CliError::UnknownBenchmark(n.to_owned())))
        .collect::<Result<_, _>>()?;
    let spec = RunSpec::with_default_warmup(p.budget);

    // Scale-model ladder: every power of two strictly between 1 and the
    // target (homogeneous_plan adds the 1-core model and the target).
    let mut ms_cores = Vec::new();
    let mut c = 2u32;
    while c < p.target_cores {
        ms_cores.push(c);
        c *= 2;
    }
    let mut cfg = ExperimentConfig {
        target: target_config(p.target_cores),
        ms_cores,
        spec,
        seed: p.seed,
        ..ExperimentConfig::default()
    };
    // Per-run intra-simulation threads; scale_config clones the target, so
    // every ladder entry inherits the setting. sim_threads is serde-skipped
    // and therefore never part of cache keys or journaled artifacts.
    cfg.target.sim_threads = p.sim_threads;
    let plan = homogeneous_plan(&cfg, &profiles);
    let cache = CachedSim::open(Path::new(&p.results).join("cache"))
        .map_err(|e| CliError::Io(e.to_string()))?;

    // Journal the plan parameters before executing so `sms resume` can
    // rebuild the identical plan after a crash; the executor appends the
    // per-run and completion lines under the same label. Best-effort: a
    // sweep must not die because its journal directory is unwritable.
    match PlanJournal::open_append(cache.dir(), &p.label) {
        Ok(journal) => journal.append_best_effort(&JournalLine::Plan(PlanHeader {
            schema_version: JOURNAL_SCHEMA_VERSION,
            label: p.label.clone(),
            bench: p.bench.clone(),
            target_cores: p.target_cores,
            budget: p.budget,
            seed: p.seed,
            threads: p.threads,
            timelines: p.timelines,
            explore: None,
        })),
        Err(e) => eprintln!("[{}] warning: cannot open plan journal: {e}", p.label),
    }

    if p.spans {
        sms_obs::tracer().set_enabled(true);
    }
    if p.timelines && p.profile {
        return Err(CliError::Spec(
            "--timelines conflicts with --profile (each installs its own run body); \
             pass one at a time"
                .to_owned(),
        ));
    }
    let (summary, profile) = if p.profile {
        let (s, prof) = execute_plan_with_profiles(&cache, &plan, spec, p.threads, &p.label);
        (s, Some(prof))
    } else if p.timelines {
        (
            execute_plan_with_timelines(&cache, &plan, spec, p.threads, &p.label),
            None,
        )
    } else {
        (execute_plan(&cache, &plan, spec, p.threads, &p.label), None)
    };

    let mut out = format!(
        "sweep `{}`: {} runs ({} cached, {} simulated, {} quarantined, {} retries)\n\
         wall {:.1}s, worker utilization {:.0}%\n",
        p.label,
        summary.total,
        summary.cached,
        summary.simulated,
        summary.failed,
        summary.retries,
        summary.wall_seconds,
        summary.worker_utilization * 100.0,
    );
    match &summary.manifest_path {
        Some(path) => out.push_str(&format!("manifest: {}\n", path.display())),
        None => out.push_str("manifest: not written (cache disk unavailable)\n"),
    }
    out.push_str(&format!(
        "journal: {} (resume an interrupted sweep with `sms resume --label {}`)\n",
        journal_path(cache.dir(), &p.label).display(),
        p.label,
    ));
    if p.timelines {
        out.push_str(&format!(
            "timelines: {} (render one with `sms timeline --path FILE`)\n",
            timelines_dir(cache.dir()).display()
        ));
    }
    if let Some(prof) = &profile {
        if prof.is_empty() {
            out.push_str(
                "profiles: no new phase samples (every run came from the cache; \
                 only simulated runs are profiled)\n",
            );
        } else {
            out.push_str(&format!(
                "profiles: {} (aggregate embedded in the manifest)\n",
                profiles_dir(cache.dir()).display()
            ));
        }
    }
    if summary.failed > 0 {
        out.push_str(&format!(
            "{} run(s) quarantined under {} (inspect with `sms quarantine`)\n",
            summary.failed,
            cache.quarantine_dir().display()
        ));
    }
    Ok(out)
}

fn threads_for(args: &Args, default: usize) -> Result<usize, CliError> {
    let threads = args.get_usize("threads", 0)?;
    Ok(if threads == 0 { default } else { threads })
}

fn cmd_sweep(args: &Args) -> Result<String, CliError> {
    let bench = args
        .options
        .get("bench")
        .ok_or(CliError::MissingOption("bench"))?
        .clone();
    let default_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let p = SweepParams {
        bench,
        target_cores: args.get_u32("target-cores", 32)?,
        budget: args.get_u64("budget", 500_000)?,
        seed: args.get_u64("seed", 43)?,
        threads: threads_for(args, default_threads)?,
        sim_threads: args.get_u32("sim-threads", 1)?,
        results: results_dir(args),
        label: args
            .options
            .get("label")
            .cloned()
            .unwrap_or_else(|| "cli-sweep".to_owned()),
        timelines: args.flag("timelines"),
        profile: args.flag("profile"),
        spans: args.flag("spans"),
    };
    run_sweep(&p)
}

fn load_spec(args: &Args) -> Result<MachineSpec, CliError> {
    let path = args
        .options
        .get("spec")
        .ok_or(CliError::MissingOption("spec"))?;
    MachineSpec::load(Path::new(path)).map_err(|e| CliError::Spec(e.to_string()))
}

fn cmd_machine_show(args: &Args) -> Result<String, CliError> {
    let spec = load_spec(args)?;
    Ok(if args.flag("json") {
        spec.render_json()
    } else {
        spec.render_toml()
    })
}

fn cmd_machine_validate(args: &Args) -> Result<String, CliError> {
    let spec = load_spec(args)?;
    let grid_points = if spec.grid.is_empty() {
        0
    } else {
        spec.grid
            .expand(&spec.machine)
            .map_err(|errs| {
                CliError::Spec(
                    errs.iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("\n"),
                )
            })?
            .len()
    };
    Ok(format!(
        "spec `{}` (schema {}) is valid\n\
         machine: {}\n\
         workloads: {} mix(es), seed {}, budget {}\n\
         grid: {} axis(es), {} design point(s)\n",
        spec.name,
        spec.schema_version,
        spec.machine.summary(),
        spec.workloads.mixes.len(),
        spec.workloads.seed,
        spec.workloads.budget,
        spec.grid.axes.len(),
        grid_points,
    ))
}

fn render_explore(label: &str, out: &ExploreOutcome) -> String {
    format!(
        "explore `{label}`: {} point(s) evaluated, {} pruned, {} quarantined\n\n\
         pareto front (throughput vs LLC capacity vs cores):\n{}\n\
         manifest: {}\n\
         (an interrupted explore resumes with `sms resume --label {label}`)\n",
        out.evaluated,
        out.pruned,
        out.quarantined,
        out.table,
        out.manifest_path.display(),
    )
}

fn explore_error(e: ExploreError) -> CliError {
    match e {
        ExploreError::Io(io) => CliError::Io(io.to_string()),
        other => CliError::Spec(other.to_string()),
    }
}

fn cmd_explore(args: &Args) -> Result<String, CliError> {
    let spec = load_spec(args)?;
    let defaults = PruneParams::default();
    let prune = PruneParams {
        enabled: !args.flag("no-prune"),
        seed: args.get_u64("prune-seed", defaults.seed)?,
        bootstrap_fraction: args.get_f64("bootstrap", defaults.bootstrap_fraction)?,
        margin: args.get_f64("margin", defaults.margin)?,
    };
    let resolved = ResolvedExplore { spec, prune };
    let default_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let params = ExploreParams {
        label: args
            .options
            .get("label")
            .cloned()
            .unwrap_or_else(|| "explore".to_owned()),
        threads: threads_for(args, default_threads)?,
        sim_threads: args.get_u32("sim-threads", 1)?,
        profile: args.flag("profile"),
    };
    let results = results_dir(args);
    let out = run_explore(Path::new(&results), &resolved, &params).map_err(explore_error)?;
    Ok(render_explore(&params.label, &out))
}

fn resume_explore(
    args: &Args,
    label: &str,
    results: &str,
    header_threads: usize,
    explore_json: &str,
) -> Result<String, CliError> {
    let resolved: ResolvedExplore = serde_json::from_str(explore_json).map_err(|e| {
        CliError::Io(format!(
            "journal for `{label}` has an unreadable explore header: {e}"
        ))
    })?;
    let params = ExploreParams {
        label: label.to_owned(),
        threads: threads_for(args, header_threads)?,
        sim_threads: args.get_u32("sim-threads", 1)?,
        // Resuming with --profile attributes phases to the points that
        // still need simulating; a plain resume stays byte-identical to
        // the uninterrupted manifest.
        profile: args.flag("profile"),
    };
    let out = run_explore(Path::new(results), &resolved, &params).map_err(explore_error)?;
    Ok(render_explore(label, &out))
}

fn cmd_resume(args: &Args) -> Result<String, CliError> {
    let results = results_dir(args);
    let label = args
        .options
        .get("label")
        .cloned()
        .unwrap_or_else(|| "cli-sweep".to_owned());
    let cache_dir = Path::new(&results).join("cache");
    let r = replay(&cache_dir, &label).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            CliError::Io(format!(
                "no journal for label `{label}` at {} — nothing to resume (run `sms sweep` first)",
                journal_path(&cache_dir, &label).display()
            ))
        } else {
            CliError::Io(e.to_string())
        }
    })?;
    let header = r.header.ok_or_else(|| {
        CliError::Io(format!(
            "journal {} has no plan header (written by a bare executor, not `sms sweep`); \
             re-run the sweep instead",
            r.path.display()
        ))
    })?;

    let mut out = format!(
        "resuming {} `{label}` from {}: {} run(s) completed, {} quarantined, previous \
         invocation {}{}\n",
        if header.explore.is_some() {
            "explore"
        } else {
            "sweep"
        },
        r.path.display(),
        r.completed.len(),
        r.quarantined.len(),
        if r.done { "finished" } else { "interrupted" },
        if r.torn_lines > 0 {
            format!(" ({} torn journal line(s) skipped)", r.torn_lines)
        } else {
            String::new()
        },
    );
    if let Some(explore_json) = &header.explore {
        out.push_str(&resume_explore(
            args,
            &label,
            &results,
            header.threads,
            explore_json,
        )?);
        return Ok(out);
    }
    let p = SweepParams {
        bench: header.bench,
        target_cores: header.target_cores,
        budget: header.budget,
        seed: header.seed,
        threads: threads_for(args, header.threads)?,
        sim_threads: args.get_u32("sim-threads", 1)?,
        results,
        label,
        timelines: header.timelines,
        profile: args.flag("profile"),
        spans: args.flag("spans"),
    };
    out.push_str(&run_sweep(&p)?);
    Ok(out)
}

fn cmd_fsck(args: &Args) -> Result<String, CliError> {
    let cache_dir = Path::new(&results_dir(args)).join("cache");
    let report = fsck(&cache_dir)
        .map_err(|e| CliError::Io(format!("cannot fsck {}: {e}", cache_dir.display())))?;
    Ok(format!(
        "cache: {}\n{}",
        cache_dir.display(),
        report.render()
    ))
}

fn cmd_quarantine(args: &Args) -> Result<String, CliError> {
    let qdir = Path::new(&results_dir(args))
        .join("cache")
        .join("quarantine");
    let mut files: Vec<std::path::PathBuf> = match std::fs::read_dir(&qdir) {
        Ok(rd) => rd
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(CliError::Io(e.to_string())),
    };
    files.sort();
    if files.is_empty() {
        return Ok(format!("no quarantined runs under {}\n", qdir.display()));
    }

    let mut out = format!("{:<34} {:<20} {:>8} error\n", "key hash", "mix", "attempts");
    for path in &files {
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| {
                serde_json::from_str::<QuarantineRecord>(&text).map_err(|e| e.to_string())
            }) {
            Ok(rec) => out.push_str(&format!(
                "{stem:<34} {:<20} {:>8} {}\n",
                rec.mix, rec.attempts, rec.error
            )),
            Err(e) => out.push_str(&format!(
                "{stem:<34} {:<20} {:>8} unreadable record ({e}); run `sms fsck`\n",
                "?", "?"
            )),
        }
    }
    if args.flag("clear") {
        for path in &files {
            std::fs::remove_file(path).map_err(|e| CliError::Io(e.to_string()))?;
        }
        out.push_str(&format!(
            "released {} quarantined run(s); the next sweep or resume will retry them\n",
            files.len()
        ));
    } else {
        out.push_str(&format!(
            "({} record(s); pass --clear to release them for re-simulation)\n",
            files.len()
        ));
    }
    Ok(out)
}

fn cmd_manifest(args: &Args) -> Result<String, CliError> {
    let path = args
        .options
        .get("path")
        .ok_or(CliError::MissingOption("path"))?;
    let manifest = RunManifest::load(path).map_err(|e| CliError::Io(e.to_string()))?;
    Ok(manifest.render())
}

fn cmd_timeline(args: &Args) -> Result<String, CliError> {
    let path = args
        .options
        .get("path")
        .ok_or(CliError::MissingOption("path"))?;
    let tl = TimelineFile::load(path).map_err(|e| CliError::Io(e.to_string()))?;
    if args.flag("csv") {
        return Ok(tl.timeline.render_csv());
    }
    Ok(format!(
        "run {} ({}, {} cores)\n{}",
        tl.key_hash,
        tl.mix,
        tl.cores,
        tl.timeline.render()
    ))
}

fn results_dir(args: &Args) -> String {
    args.options
        .get("results")
        .cloned()
        .unwrap_or_else(|| "results".to_owned())
}

fn kind_for(args: &Args) -> Result<MlKind, CliError> {
    match args.options.get("kind").map(String::as_str) {
        None | Some("svm") => Ok(MlKind::Svm),
        Some("dt") => Ok(MlKind::DecisionTree),
        Some("rf") => Ok(MlKind::RandomForest),
        Some("krr") => Ok(MlKind::KernelRidge),
        Some(other) => Err(CliError::BadValue("kind".into(), other.to_owned())),
    }
}

fn curve_for(args: &Args) -> Result<CurveModel, CliError> {
    match args.options.get("curve").map(String::as_str) {
        None | Some("log") => Ok(CurveModel::Logarithmic),
        Some("linear") => Ok(CurveModel::Linear),
        Some("power") => Ok(CurveModel::Power),
        Some(other) => Err(CliError::BadValue("curve".into(), other.to_owned())),
    }
}

fn format_cv(cv: Option<f64>) -> String {
    cv.map_or_else(|| "n/a".to_owned(), |e| format!("{:.1}%", e * 100.0))
}

fn cmd_train(args: &Args) -> Result<String, CliError> {
    let target_cores = args.get_u32("target-cores", 32)?;
    // The ladder needs at least two multi-core scale models (2 and 4), so
    // the smallest trainable target is 8 cores.
    if !target_cores.is_power_of_two() || !(8..=256).contains(&target_cores) {
        return Err(CliError::BadValue(
            "target-cores".into(),
            target_cores.to_string(),
        ));
    }
    let seed = args.get_u64("seed", 43)?;
    let spec = spec_for(args)?;
    let kind = kind_for(args)?;
    let curve = curve_for(args)?;
    let results = results_dir(args);

    let profiles: Vec<_> = match args.options.get("bench") {
        Some(list) => list
            .split(',')
            .map(|n| by_name(n).ok_or_else(|| CliError::UnknownBenchmark(n.to_owned())))
            .collect::<Result<_, _>>()?,
        None => suite(),
    };

    // Scale-model ladder: every power of two strictly between 1 and the
    // target (the 1-core model is the ss measurement collected anyway).
    let mut ms_cores = Vec::new();
    let mut c = 2u32;
    while c < target_cores {
        ms_cores.push(c);
        c *= 2;
    }
    let cfg = ExperimentConfig {
        target: target_config(target_cores),
        ms_cores,
        spec,
        seed,
        ..ExperimentConfig::default()
    };
    let name = args
        .options
        .get("name")
        .cloned()
        .unwrap_or_else(|| format!("{kind}-{curve}-{target_cores}c").to_lowercase());

    let mut cache = CachedSim::open(Path::new(&results).join("cache"))
        .map_err(|e| CliError::Io(e.to_string()))?;
    eprintln!(
        "training {kind}-{curve} artifact `{name}`: {} benchmarks x {} scale models...",
        profiles.len(),
        cfg.ms_cores.len() + 1,
    );
    let artifact = train_artifact(
        &mut cache,
        cfg,
        &profiles,
        kind,
        curve,
        &ModelParams::default(),
        &name,
    )
    .map_err(|e| CliError::Sim(e.to_string()))?;

    let mut out = format!(
        "artifact `{}`: kind {kind}, curve {curve}, target {target_cores} cores\n\
         trained on {} benchmark(s), LOO cv error {}\n",
        artifact.name,
        artifact.payload.trained_on.len(),
        format_cv(artifact.payload.cv_error),
    );
    if args.flag("save") {
        let path = artifact
            .save_in(&models_dir(Path::new(&results)))
            .map_err(|e| CliError::Io(e.to_string()))?;
        out.push_str(&format!("saved to {}\n", path.display()));
    } else {
        out.push_str("(pass --save to persist it under <results>/cache/models/)\n");
    }
    Ok(out)
}

fn cmd_models(args: &Args) -> Result<String, CliError> {
    let dir = models_dir(Path::new(&results_dir(args)));
    let registry = ModelRegistry::open(&dir).map_err(|e| CliError::Io(e.to_string()))?;
    if registry.is_empty() {
        return Ok(format!(
            "no model artifacts under {} (train one with `sms train --save`)\n",
            dir.display()
        ));
    }
    let mut out = format!(
        "{:<24} {:>5} {:>7} {:>7} {:>7} {:>9}\n",
        "name", "kind", "curve", "target", "benchs", "cv error"
    );
    for info in registry.infos() {
        out.push_str(&format!(
            "{:<24} {:>5} {:>7} {:>7} {:>7} {:>9}\n",
            info.name,
            info.kind,
            info.curve,
            info.target_cores,
            info.benchmarks,
            format_cv(info.cv_error),
        ));
    }
    out.push_str(&format!(
        "({} artifact(s) under {})\n",
        registry.len(),
        dir.display()
    ));
    Ok(out)
}

fn cmd_serve(args: &Args) -> Result<String, CliError> {
    let results = results_dir(args);
    let addr = args
        .options
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:8080".to_owned());
    let workers = args.get_usize("workers", 4)?;
    let request_timeout_ms = args.get_u64("request-timeout-ms", 5_000)?;
    if !(MIN_DEADLINE_MS..=MAX_DEADLINE_MS).contains(&request_timeout_ms) {
        // 0 would expire every request on arrival; anything past a minute
        // defeats the point of a deadline. Fail loudly instead of clamping.
        return Err(CliError::BadValue(
            "request-timeout-ms".into(),
            format!("{request_timeout_ms} (must be {MIN_DEADLINE_MS}..={MAX_DEADLINE_MS})"),
        ));
    }

    let dir = models_dir(Path::new(&results));
    let registry = ModelRegistry::open(&dir).map_err(|e| CliError::Io(e.to_string()))?;
    if registry.is_empty() {
        eprintln!(
            "warning: no model artifacts under {}; /predict will answer 404 \
             (train one with `sms train --save`)",
            dir.display()
        );
    }
    let models = registry.len();

    let config = ServerConfig {
        addr,
        workers,
        request_timeout_ms,
        ..ServerConfig::default()
    };
    let handle = serve(registry, config).map_err(|e| CliError::Io(e.to_string()))?;
    let bound = handle.addr();
    eprintln!(
        "sms-serve listening on http://{bound} serving {models} model(s); \
         stop with POST /shutdown or `q` on stdin"
    );

    // Pure-std builds cannot install OS signal handlers, so graceful
    // shutdown comes from POST /shutdown or an explicit `q`/`quit`/`stop`
    // line on stdin. EOF parks the watcher (a detached stdin must not
    // stop the server).
    let trigger = handle.shutdown_trigger();
    std::thread::spawn(move || {
        let mut line = String::new();
        loop {
            line.clear();
            match std::io::stdin().read_line(&mut line) {
                Ok(0) | Err(_) => return,
                Ok(_) if matches!(line.trim(), "q" | "quit" | "stop") => {
                    trigger.trigger();
                    return;
                }
                Ok(_) => {}
            }
        }
    });

    // sms-lint: allow(C3): ServerHandle::join drains a shut-down pool whose
    handle.join(); // workers exit on a bounded pop_timeout tick; see serve/server.rs
    Ok(format!("sms-serve on {bound} shut down cleanly\n"))
}

fn cmd_lint(args: &Args) -> Result<String, CliError> {
    let root = args
        .options
        .get("root")
        .map_or_else(|| Path::new(".").to_owned(), |r| Path::new(r).to_owned());
    let format = args.options.get("format").map_or("text", String::as_str);
    if format != "text" && format != "json" {
        return Err(CliError::BadValue("format".into(), format.to_owned()));
    }
    if args.options.contains_key("baseline") && args.options.contains_key("write-baseline") {
        return Err(CliError::BadValue(
            "baseline".into(),
            "--baseline and --write-baseline are mutually exclusive".into(),
        ));
    }
    let mut report = sms_lint::lint_workspace(&root).map_err(|e| CliError::Io(e.to_string()))?;
    if let Some(path) = args.options.get("write-baseline") {
        std::fs::write(path, report.render_baseline()).map_err(|e| CliError::Io(e.to_string()))?;
        return Ok(format!(
            "sms-lint: wrote baseline with {} finding(s) to {path}\n",
            report.findings.len()
        ));
    }
    if let Some(path) = args.options.get("baseline") {
        let baseline = std::fs::read_to_string(path).map_err(|e| CliError::Io(e.to_string()))?;
        report.apply_baseline(&baseline);
    }
    let rendered = if format == "json" {
        report.render_json()
    } else {
        report.render_text()
    };
    if report.is_clean() {
        Ok(rendered)
    } else {
        Err(CliError::Lint(rendered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        Args::parse(&v.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn parse_commands_and_options() {
        let a = args(&["simulate", "--bench", "lbm_r", "--cores", "4", "--json"]);
        assert_eq!(a.command, "simulate");
        assert_eq!(a.options["bench"], "lbm_r");
        assert_eq!(a.options["cores"], "4");
        assert!(a.flag("json"));
        assert!(!a.flag("nope"));
    }

    #[test]
    fn parse_rejects_positional_garbage() {
        let r = Args::parse(&["simulate".into(), "oops".into()]);
        assert!(r.is_err());
    }

    #[test]
    fn empty_args_is_no_command() {
        assert_eq!(Args::parse(&[]), Err(CliError::NoCommand));
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&args(&["help"])).unwrap();
        assert!(out.contains("simulate"));
        assert!(out.contains("bench-table"));
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(matches!(
            run(&args(&["frobnicate"])),
            Err(CliError::UnknownCommand(_))
        ));
    }

    #[test]
    fn help_and_unknown_command_list_every_subcommand() {
        let help = run(&args(&["help"])).unwrap();
        let unknown = run(&args(&["frobnicate"])).unwrap_err().to_string();
        for c in COMMANDS {
            assert!(help.contains(c), "help is missing `{c}`");
            assert!(
                unknown.contains(c),
                "unknown-command error is missing `{c}`"
            );
        }
        assert!(unknown.contains("frobnicate"));
    }

    #[test]
    fn every_listed_command_actually_dispatches() {
        // Each listed command gets arguments that make it return fast
        // (an error before any real work, or a cheap success); the one
        // outcome that would reveal a listing/dispatch mismatch is
        // `UnknownCommand`.
        let fast_args: &[(&str, &[&str])] = &[
            ("simulate", &["--bench", "no-such-bench"]),
            ("profile", &["--bench", "no-such-bench"]),
            ("scale", &["--cores", "3"]),
            ("predict", &["--bench", "no-such-bench"]),
            ("trace", &["--bench", "no-such-bench"]),
            ("bench-table", &["--budget", "not-a-number"]),
            ("bench sim", &["--budget", "not-a-number"]),
            ("bench diff", &["--results", "/nonexistent/sms-test"]),
            ("sweep", &[]),
            ("explore", &[]),
            ("machine show", &[]),
            ("machine validate", &[]),
            ("resume", &["--results", "/nonexistent/sms-test"]),
            ("fsck", &["--results", "/nonexistent/sms-test"]),
            ("quarantine", &["--results", "/nonexistent/sms-test"]),
            ("manifest", &[]),
            ("timeline", &[]),
            ("train", &["--target-cores", "3"]),
            ("models", &["--results", "/nonexistent/sms-test"]),
            ("serve", &["--workers", "not-a-number"]),
            ("serve", &["--request-timeout-ms", "0"]),
            ("serve", &["--request-timeout-ms", "3600000"]),
            ("lint", &["--format", "xml"]),
            ("help", &[]),
        ];
        let covered: Vec<&str> = fast_args.iter().map(|(c, _)| *c).collect();
        for c in COMMANDS {
            assert!(
                covered.contains(c),
                "COMMANDS entry `{c}` missing from this test"
            );
        }
        for (c, extra) in fast_args {
            assert!(
                COMMANDS.contains(c),
                "`{c}` dispatches but is not listed in COMMANDS"
            );
            let mut raw: Vec<&str> = c.split(' ').collect();
            raw.extend_from_slice(extra);
            let result = run(&args(&raw));
            assert!(
                !matches!(result, Err(CliError::UnknownCommand(_))),
                "`{c}` is listed in COMMANDS but does not dispatch"
            );
        }
    }

    #[test]
    fn target_cores_rounding_prints_a_notice() {
        // 33 is not a power of two: the machine is built for 64 and the
        // output says so (this rounding used to be silent).
        let out = run(&args(&[
            "simulate",
            "--bench",
            "leela_r",
            "--cores",
            "2",
            "--target-cores",
            "33",
            "--budget",
            "4000",
        ]))
        .unwrap();
        assert!(
            out.contains("note: --target-cores 33 adjusted to 64"),
            "{out}"
        );
        // An exact power of two stays silent.
        let quiet = run(&args(&[
            "simulate",
            "--bench",
            "leela_r",
            "--cores",
            "2",
            "--target-cores",
            "32",
            "--budget",
            "4000",
        ]))
        .unwrap();
        assert!(!quiet.contains("note: --target-cores"), "{quiet}");
        assert_eq!(effective_target_cores(33, 2), 64);
        assert_eq!(effective_target_cores(32, 2), 32);
        assert_eq!(effective_target_cores(1, 8), 8);
    }

    fn write_spec(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sms-cli-spec-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("machine.toml");
        std::fs::write(
            &path,
            "schema = 1\nname = \"cli-test\"\n\n[machine]\ncores = 2\n\n[workloads]\n\
             mixes = [[\"leela_r\", \"lbm_r\"]]\nseed = 7\nbudget = 4000\n\n[grid]\n\
             rob_size = [16, 128]\n",
        )
        .unwrap();
        path
    }

    #[test]
    fn machine_show_round_trips_and_validate_counts_points() {
        let path = write_spec("roundtrip");
        let shown = run(&args(&[
            "machine",
            "show",
            "--spec",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(shown.contains("name = \"cli-test\""), "{shown}");
        // The rendering itself loads and validates: write it back out and
        // show it again.
        let reshow = path.with_file_name("reshow.toml");
        std::fs::write(&reshow, &shown).unwrap();
        let again = run(&args(&[
            "machine",
            "show",
            "--spec",
            reshow.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(shown, again, "render_toml must round-trip");
        let json = run(&args(&[
            "machine",
            "show",
            "--spec",
            path.to_str().unwrap(),
            "--json",
        ]))
        .unwrap();
        assert!(json.contains("\"schema\""), "{json}");
        assert!(json.contains("\"rob_size\""), "{json}");
        let validated = run(&args(&[
            "machine",
            "validate",
            "--spec",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(validated.contains("is valid"), "{validated}");
        assert!(validated.contains("2 design point(s)"), "{validated}");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn machine_validate_reports_field_level_errors() {
        let path = write_spec("badfield");
        std::fs::write(
            &path,
            "schema = 1\n[machine]\ncores = 3\n[machine.llc]\nslice_capacity_kib = \"big\"\n",
        )
        .unwrap();
        let err = run(&args(&[
            "machine",
            "validate",
            "--spec",
            path.to_str().unwrap(),
        ]))
        .unwrap_err()
        .to_string();
        assert!(err.contains("machine.cores"), "{err}");
        assert!(err.contains("machine.llc.slice_capacity_kib"), "{err}");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn simulate_accepts_machine_spec_and_rejects_conflicts() {
        let path = write_spec("simulate");
        let out = run(&args(&["simulate", "--machine", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("machine spec: cli-test"), "{out}");
        assert!(out.contains("leela_r"), "{out}");
        assert!(out.contains("lbm_r"), "{out}");
        let conflict = run(&args(&[
            "simulate",
            "--machine",
            path.to_str().unwrap(),
            "--cores",
            "4",
        ]))
        .unwrap_err();
        assert!(
            conflict.to_string().contains("conflicts with --machine"),
            "{conflict}"
        );
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn explore_then_resume_reproduces_the_manifest() {
        let path = write_spec("explore");
        let results = path.parent().unwrap().join("results");
        let common = [
            "--spec",
            path.to_str().unwrap(),
            "--label",
            "t-explore",
            "--results",
            results.to_str().unwrap(),
            "--threads",
            "2",
            "--no-prune",
        ];
        let mut raw = vec!["explore"];
        raw.extend_from_slice(&common);
        let out = run(&args(&raw)).unwrap();
        assert!(out.contains("pareto front"), "{out}");
        assert!(out.contains("2 point(s) evaluated"), "{out}");
        let manifest = results.join("cache/explore/t-explore.json");
        let first = std::fs::read(&manifest).unwrap();
        // Resume after completion re-derives a bit-identical manifest
        // from the journal header alone.
        let resumed = run(&args(&[
            "resume",
            "--label",
            "t-explore",
            "--results",
            results.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(
            resumed.contains("resuming explore `t-explore`"),
            "{resumed}"
        );
        let second = std::fs::read(&manifest).unwrap();
        assert_eq!(
            first, second,
            "resumed explore manifest must be bit-identical"
        );
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn lint_rejects_bad_format_and_missing_root() {
        let bad = run(&args(&["lint", "--format", "xml"]));
        assert!(matches!(bad, Err(CliError::BadValue(_, _))), "{bad:?}");
        let gone = std::env::temp_dir().join(format!("sms-cli-nolint-{}", std::process::id()));
        let missing = run(&args(&["lint", "--root", gone.to_str().unwrap()]));
        assert!(matches!(missing, Err(CliError::Io(_))), "{missing:?}");
    }

    #[test]
    fn lint_reports_findings_with_nonzero_semantics() {
        let root = std::env::temp_dir().join(format!("sms-cli-lint-{}", std::process::id()));
        let src = root.join("crates/demo/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(
            src.join("lib.rs"),
            "pub fn f() -> std::collections::HashMap<u8, u8> { std::collections::HashMap::new() }\n",
        )
        .unwrap();
        let err = run(&args(&["lint", "--root", root.to_str().unwrap()])).unwrap_err();
        match &err {
            CliError::Lint(report) => {
                assert!(report.contains("[D2]"), "{report}");
                assert!(report.contains("2 finding(s)"), "{report}");
            }
            other => panic!("expected CliError::Lint, got {other:?}"),
        }
        // A clean tree returns Ok with the summary line.
        std::fs::write(src.join("lib.rs"), "pub fn f() -> u8 { 0 }\n").unwrap();
        let ok = run(&args(&[
            "lint",
            "--root",
            root.to_str().unwrap(),
            "--format",
            "json",
        ]))
        .unwrap();
        assert!(ok.contains("\"clean\":true"), "{ok}");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn lint_baseline_write_then_warn_only() {
        let root = std::env::temp_dir().join(format!("sms-cli-lintbase-{}", std::process::id()));
        let src = root.join("crates/demo/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(
            src.join("lib.rs"),
            "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )
        .unwrap();
        let baseline = root.join("lint-baseline.jsonl");
        let baseline_s = baseline.to_str().unwrap().to_owned();
        let root_s = root.to_str().unwrap().to_owned();

        // Mutually exclusive flags are rejected.
        let both = run(&args(&[
            "lint",
            "--baseline",
            &baseline_s,
            "--write-baseline",
            &baseline_s,
        ]));
        assert!(matches!(both, Err(CliError::BadValue(_, _))), "{both:?}");

        // Write the baseline, then the same tree lints clean against it.
        let wrote = run(&args(&[
            "lint",
            "--root",
            &root_s,
            "--write-baseline",
            &baseline_s,
        ]))
        .unwrap();
        assert!(
            wrote.contains("wrote baseline with 1 finding(s)"),
            "{wrote}"
        );
        let ok = run(&args(&[
            "lint",
            "--root",
            &root_s,
            "--baseline",
            &baseline_s,
        ]))
        .unwrap();
        assert!(ok.contains("[E1 baselined]"), "{ok}");
        assert!(ok.contains("0 finding(s)"), "{ok}");

        // A new finding still fails even with the baseline applied.
        std::fs::write(
            src.join("lib.rs"),
            "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\npub fn g() { panic!(); }\n",
        )
        .unwrap();
        let err = run(&args(&[
            "lint",
            "--root",
            &root_s,
            "--baseline",
            &baseline_s,
        ]))
        .unwrap_err();
        match &err {
            CliError::Lint(report) => {
                assert!(report.contains("1 finding(s)"), "{report}");
                assert!(report.contains("1 baselined"), "{report}");
            }
            other => panic!("expected CliError::Lint, got {other:?}"),
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn train_save_and_models_roundtrip() {
        let results = std::env::temp_dir().join(format!("sms-cli-train-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&results);
        let out = run(&args(&[
            "train",
            "--bench",
            "leela_r,xz_r,gcc_r",
            "--target-cores",
            "8",
            "--budget",
            "20000",
            "--save",
            "--results",
            results.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("artifact `svm-log-8c`"), "{out}");
        assert!(out.contains("trained on 3 benchmark(s)"), "{out}");
        assert!(out.contains("saved to"), "{out}");
        assert!(results.join("cache/models/svm-log-8c.json").exists());

        let listing = run(&args(&["models", "--results", results.to_str().unwrap()])).unwrap();
        assert!(listing.contains("svm-log-8c"), "{listing}");
        assert!(listing.contains("SVM"), "{listing}");
        assert!(listing.contains("1 artifact(s)"), "{listing}");
        let _ = std::fs::remove_dir_all(&results);
    }

    #[test]
    fn models_with_no_artifacts_hints_at_train() {
        let results = std::env::temp_dir().join(format!("sms-cli-nomodels-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&results);
        let out = run(&args(&["models", "--results", results.to_str().unwrap()])).unwrap();
        assert!(out.contains("no model artifacts"), "{out}");
        assert!(out.contains("sms train --save"), "{out}");
        let _ = std::fs::remove_dir_all(&results);
    }

    #[test]
    fn serve_rejects_bad_request_timeouts() {
        // Rejected before any socket is bound or registry opened, so these
        // are fast. 0 would expire every request on arrival; huge values
        // defeat the deadline; garbage must not fall back to the default.
        for bad in ["0", "9", "60001", "not-a-number", "-5"] {
            let result = run(&args(&["serve", "--request-timeout-ms", bad]));
            assert!(
                matches!(result, Err(CliError::BadValue(ref k, _)) if k == "request-timeout-ms"),
                "--request-timeout-ms {bad}: {result:?}"
            );
        }
    }

    #[test]
    fn train_rejects_bad_options() {
        assert!(matches!(
            run(&args(&["train", "--kind", "gpt"])),
            Err(CliError::BadValue(_, _))
        ));
        assert!(matches!(
            run(&args(&["train", "--curve", "cubic"])),
            Err(CliError::BadValue(_, _))
        ));
        // Too small for a two-model scale ladder.
        assert!(matches!(
            run(&args(&["train", "--target-cores", "4"])),
            Err(CliError::BadValue(_, _))
        ));
        assert!(matches!(
            run(&args(&[
                "train",
                "--bench",
                "nope_r",
                "--target-cores",
                "8"
            ])),
            Err(CliError::UnknownBenchmark(_))
        ));
    }

    #[test]
    fn scale_prints_table() {
        let out = run(&args(&["scale"])).unwrap();
        assert!(out.contains("32 cores"));
        assert!(out.contains("1 MB"));
        let out64 = run(&args(&["scale", "--cores", "64"])).unwrap();
        assert!(out64.contains("64 cores"));
    }

    #[test]
    fn scale_rejects_bad_cores() {
        assert!(run(&args(&["scale", "--cores", "48"])).is_err());
    }

    #[test]
    fn simulate_small_run_works() {
        let out = run(&args(&[
            "simulate", "--bench", "leela_r", "--cores", "1", "--budget", "20000",
        ]))
        .unwrap();
        assert!(out.contains("leela_r"));
        assert!(out.contains("total:"));
    }

    #[test]
    fn simulate_json_output_parses() {
        let out = run(&args(&[
            "simulate", "--bench", "xz_r", "--cores", "2", "--budget", "20000", "--json",
        ]))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["cores"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn simulate_mixed_benchmarks_round_robin() {
        let out = run(&args(&[
            "simulate",
            "--bench",
            "leela_r,lbm_r",
            "--cores",
            "4",
            "--budget",
            "20000",
        ]))
        .unwrap();
        assert!(out.contains("leela_r") && out.contains("lbm_r"));
    }

    #[test]
    fn simulate_unknown_benchmark_fails() {
        assert!(matches!(
            run(&args(&["simulate", "--bench", "nope_r", "--cores", "1"])),
            Err(CliError::UnknownBenchmark(_))
        ));
    }

    #[test]
    fn predict_runs() {
        let out = run(&args(&["predict", "--bench", "xz_r", "--budget", "20000"])).unwrap();
        assert!(out.contains("predicted per-core IPC"));
    }

    #[test]
    fn trace_records_file() {
        let path = std::env::temp_dir().join(format!("sms-cli-{}.smst", std::process::id()));
        let out = run(&args(&[
            "trace",
            "--bench",
            "gcc_r",
            "--out",
            path.to_str().unwrap(),
            "--instructions",
            "5000",
        ]))
        .unwrap();
        assert!(out.contains("recorded"));
        let t = RecordedTrace::load(&path).unwrap();
        assert!(t.instructions() >= 5000);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sweep_executes_plan_and_manifest_renders() {
        let results = std::env::temp_dir().join(format!("sms-cli-sweep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&results);
        let out = run(&args(&[
            "sweep",
            "--bench",
            "leela_r,xz_r",
            "--target-cores",
            "2",
            "--budget",
            "20000",
            "--results",
            results.to_str().unwrap(),
            "--label",
            "cli-test",
        ]))
        .unwrap();
        assert!(out.contains("sweep `cli-test`"), "{out}");
        assert!(out.contains("4 runs"), "{out}");
        assert!(out.contains("0 quarantined"), "{out}");

        let manifest_path = results.join("cache/manifests/cli-test.json");
        assert!(manifest_path.exists(), "manifest missing: {out}");
        let rendered = run(&args(&[
            "manifest",
            "--path",
            manifest_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(rendered.contains("cli-test"), "{rendered}");

        // A second identical sweep is served entirely from the cache.
        let again = run(&args(&[
            "sweep",
            "--bench",
            "leela_r,xz_r",
            "--target-cores",
            "2",
            "--budget",
            "20000",
            "--results",
            results.to_str().unwrap(),
            "--label",
            "cli-test",
        ]))
        .unwrap();
        assert!(again.contains("4 cached"), "{again}");
        let _ = std::fs::remove_dir_all(&results);
    }

    #[test]
    fn simulate_timeline_out_then_timeline_renders() {
        let path = std::env::temp_dir().join(format!("sms-cli-tl-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let out = run(&args(&[
            "simulate",
            "--bench",
            "leela_r",
            "--cores",
            "1",
            "--budget",
            "20000",
            "--timeline-out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("timeline:"), "{out}");
        assert!(path.exists());

        let rendered = run(&args(&["timeline", "--path", path.to_str().unwrap()])).unwrap();
        assert!(rendered.contains("1x leela_r"), "{rendered}");
        assert!(rendered.contains("epoch"), "{rendered}");
        assert!(rendered.contains("epochs of"), "{rendered}");

        let csv = run(&args(&[
            "timeline",
            "--path",
            path.to_str().unwrap(),
            "--csv",
        ]))
        .unwrap();
        assert!(csv.starts_with("epoch,cycle,ipc,"), "{csv}");
        assert!(csv.lines().count() >= 2, "{csv}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sweep_with_timelines_writes_per_run_files() {
        let results = std::env::temp_dir().join(format!("sms-cli-sweep-tl-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&results);
        let out = run(&args(&[
            "sweep",
            "--bench",
            "leela_r",
            "--target-cores",
            "2",
            "--budget",
            "20000",
            "--results",
            results.to_str().unwrap(),
            "--label",
            "cli-tl",
            "--timelines",
        ]))
        .unwrap();
        assert!(out.contains("timelines:"), "{out}");
        let tdir = results.join("cache/timelines");
        let files: Vec<_> = std::fs::read_dir(&tdir).unwrap().flatten().collect();
        assert_eq!(files.len(), 2, "one timeline per simulated run");
        let rendered = run(&args(&[
            "timeline",
            "--path",
            files[0].path().to_str().unwrap(),
        ]))
        .unwrap();
        assert!(rendered.contains("epoch"), "{rendered}");
        let _ = std::fs::remove_dir_all(&results);
    }

    #[test]
    fn timeline_on_missing_file_is_io_error() {
        assert!(matches!(
            run(&args(&["timeline", "--path", "/nonexistent/timeline.json"])),
            Err(CliError::Io(_))
        ));
    }

    #[test]
    fn manifest_on_missing_file_is_io_error() {
        assert!(matches!(
            run(&args(&["manifest", "--path", "/nonexistent/manifest.json"])),
            Err(CliError::Io(_))
        ));
    }

    #[test]
    fn missing_required_option_reported() {
        assert_eq!(
            run(&args(&["trace", "--bench", "gcc_r"])),
            Err(CliError::MissingOption("out"))
        );
    }

    #[test]
    fn sweep_journals_then_resume_fsck_quarantine_report_clean() {
        let results = std::env::temp_dir().join(format!("sms-cli-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&results);
        let out = run(&args(&[
            "sweep",
            "--bench",
            "leela_r",
            "--target-cores",
            "2",
            "--budget",
            "20000",
            "--results",
            results.to_str().unwrap(),
            "--label",
            "cyc",
        ]))
        .unwrap();
        assert!(out.contains("journal:"), "{out}");
        assert!(results.join("cache/journal/cyc.jsonl").exists(), "{out}");

        // Resume after a completed sweep: the plan rebuilds identically
        // and every run is served from the cache.
        let resumed = run(&args(&[
            "resume",
            "--label",
            "cyc",
            "--results",
            results.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(resumed.contains("resuming sweep `cyc`"), "{resumed}");
        assert!(resumed.contains("invocation finished"), "{resumed}");
        assert!(resumed.contains("2 cached"), "{resumed}");

        let checked = run(&args(&["fsck", "--results", results.to_str().unwrap()])).unwrap();
        assert!(checked.contains("0 defect(s)"), "{checked}");

        let q = run(&args(&[
            "quarantine",
            "--results",
            results.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(q.contains("no quarantined runs"), "{q}");
        let _ = std::fs::remove_dir_all(&results);
    }

    #[test]
    fn resume_without_a_journal_is_an_error() {
        let results = std::env::temp_dir().join(format!("sms-cli-noresume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&results);
        let err = run(&args(&[
            "resume",
            "--label",
            "never",
            "--results",
            results.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("nothing to resume"), "{err}");
        let _ = std::fs::remove_dir_all(&results);
    }

    #[test]
    fn fsck_on_missing_cache_is_an_error() {
        let results = std::env::temp_dir().join(format!("sms-cli-nofsck-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&results);
        assert!(matches!(
            run(&args(&["fsck", "--results", results.to_str().unwrap()])),
            Err(CliError::Io(_))
        ));
    }

    #[test]
    fn quarantine_lists_and_clears_records() {
        let results = std::env::temp_dir().join(format!("sms-cli-quar-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&results);
        let qdir = results.join("cache/quarantine");
        std::fs::create_dir_all(&qdir).unwrap();
        let rec = QuarantineRecord {
            key: "cfg|mix|spec".into(),
            mix: "2x leela_r".into(),
            error: "boom".into(),
            attempts: 3,
        };
        let hash = "00000000000000000000000000000000";
        std::fs::write(
            qdir.join(format!("{hash}.json")),
            serde_json::to_string(&rec).unwrap(),
        )
        .unwrap();

        let listing = run(&args(&[
            "quarantine",
            "--results",
            results.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(listing.contains(hash), "{listing}");
        assert!(listing.contains("boom"), "{listing}");
        assert!(listing.contains("--clear"), "{listing}");

        let cleared = run(&args(&[
            "quarantine",
            "--results",
            results.to_str().unwrap(),
            "--clear",
        ]))
        .unwrap();
        assert!(
            cleared.contains("released 1 quarantined run(s)"),
            "{cleared}"
        );
        assert!(!qdir.join(format!("{hash}.json")).exists());

        let empty = run(&args(&[
            "quarantine",
            "--results",
            results.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(empty.contains("no quarantined runs"), "{empty}");
        let _ = std::fs::remove_dir_all(&results);
    }

    #[test]
    fn profile_prints_table_flame_and_json() {
        let dir = std::env::temp_dir().join(format!("sms-cli-prof-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let flame = dir.join("flame.txt");
        let out = run(&args(&[
            "profile",
            "--bench",
            "leela_r,lbm_r",
            "--cores",
            "2",
            "--budget",
            "100000",
            "--flame",
            flame.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("sim.run"), "{out}");
        assert!(out.contains("core.step"), "{out}");
        assert!(out.contains("window.merge"), "{out}");
        assert!(out.contains("coverage:"), "{out}");
        // Acceptance: phase self-times account for >= 90% of the wall
        // time a stopwatch around the run would measure.
        let coverage: f64 = out
            .lines()
            .find(|l| l.starts_with("coverage:"))
            .and_then(|l| l.split('%').next())
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|n| n.parse().ok())
            .unwrap();
        assert!(coverage >= 90.0, "coverage {coverage}% below 90%:\n{out}");

        let collapsed = std::fs::read_to_string(&flame).unwrap();
        assert!(
            collapsed
                .lines()
                .any(|l| l.starts_with("sim.run;window.fork;core.step ")),
            "{collapsed}"
        );
        let json = run(&args(&[
            "profile", "--bench", "leela_r", "--cores", "1", "--budget", "20000", "--json",
        ]))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(json.contains("sim.run"), "{json}");
        assert!(v.get("phases").is_some(), "{json}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_with_profile_writes_files_and_embeds_the_aggregate() {
        let results = std::env::temp_dir().join(format!("sms-cli-sweep-pr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&results);
        let out = run(&args(&[
            "sweep",
            "--bench",
            "leela_r",
            "--target-cores",
            "2",
            "--budget",
            "20000",
            "--results",
            results.to_str().unwrap(),
            "--label",
            "cli-prof",
            "--profile",
        ]))
        .unwrap();
        assert!(out.contains("profiles:"), "{out}");
        let pdir = results.join("cache/profiles");
        let files: Vec<_> = std::fs::read_dir(&pdir).unwrap().flatten().collect();
        assert_eq!(files.len(), 2, "one profile per simulated run: {out}");
        let manifest =
            std::fs::read_to_string(results.join("cache/manifests/cli-prof.json")).unwrap();
        assert!(manifest.contains("\"profile\""), "{manifest}");
        assert!(manifest.contains("sim.run"), "{manifest}");

        // --timelines and --profile install different run bodies and
        // cannot combine.
        let conflict = run(&args(&[
            "sweep",
            "--bench",
            "leela_r",
            "--target-cores",
            "2",
            "--results",
            results.to_str().unwrap(),
            "--timelines",
            "--profile",
        ]))
        .unwrap_err();
        assert!(conflict.to_string().contains("conflicts"), "{conflict}");
        let _ = std::fs::remove_dir_all(&results);
    }

    fn bench_sim_args<'a>(results: &'a str, out: &'a str) -> Vec<&'a str> {
        vec![
            "bench",
            "sim",
            "--cores",
            "2",
            "--budget",
            "20000",
            "--reps",
            "1",
            "--threads-list",
            "1",
            "--quantum",
            "5000",
            "--results",
            results,
            "--out",
            out,
        ]
    }

    #[test]
    fn bench_sim_builds_a_trajectory_and_bench_diff_gates_on_the_ledger() {
        let dir = std::env::temp_dir().join(format!("sms-cli-ledger-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let results = dir.join("results");
        let artifact = dir.join("BENCH_sim.json");
        let results_s = results.to_str().unwrap().to_owned();
        let artifact_s = artifact.to_str().unwrap().to_owned();

        // First run: fresh artifact (empty trajectory), one ledger line,
        // and nothing to diff against yet.
        let out1 = run(&args(&bench_sim_args(&results_s, &artifact_s))).unwrap();
        assert!(out1.contains("ledger: appended"), "{out1}");
        let v1: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&artifact).unwrap()).unwrap();
        assert_eq!(v1["schema_version"].as_u64(), Some(2));
        assert_eq!(v1["trajectory"].as_array().map(Vec::len), Some(0));
        let lonely = run(&args(&["bench", "diff", "--results", &results_s])).unwrap();
        assert!(lonely.contains("nothing to compare yet"), "{lonely}");

        // Second run: the previous measurement folds into the trajectory
        // and the diff against the (equal-speed-ish) baseline passes.
        let out2 = run(&args(&bench_sim_args(&results_s, &artifact_s))).unwrap();
        assert!(out2.contains("ledger: appended"), "{out2}");
        let v2: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&artifact).unwrap()).unwrap();
        assert_eq!(v2["trajectory"].as_array().map(Vec::len), Some(1));
        let history = bench_history_path(&results_s);
        assert_eq!(
            std::fs::read_to_string(&history).unwrap().lines().count(),
            2
        );
        // Same host, same machine, two honest measurements: a 15% + noise
        // gate can still flake on a loaded CI box, so compare with a huge
        // threshold here; the regression path below uses a 10x slowdown.
        let ok = run(&args(&[
            "bench",
            "diff",
            "--results",
            &results_s,
            "--threshold",
            "9",
        ]))
        .unwrap();
        assert!(ok.contains("no regression"), "{ok}");

        // The committed artifact also works as an --against baseline.
        let vs_file = run(&args(&[
            "bench",
            "diff",
            "--results",
            &results_s,
            "--against",
            &artifact_s,
            "--threshold",
            "9",
        ]))
        .unwrap();
        assert!(vs_file.contains(&format!("file {artifact_s}")), "{vs_file}");

        // Append a synthetic 10x-slower record: diff must exit non-zero.
        let last = std::fs::read_to_string(&history)
            .unwrap()
            .lines()
            .last()
            .map(str::to_owned)
            .unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&last).unwrap();
        let p50 = parsed["entries"][0]["p50_wall_seconds"].as_f64().unwrap();
        let (cpus, target) = host_fingerprint();
        let slow = format!(
            "{{\"budget\":20000,\"cores\":2,\"entries\":[{{\"p50_wall_seconds\":{:.6},\
             \"p95_wall_seconds\":{:.6},\"sim_threads\":1,\"speedup_vs_1_thread\":1.0}}],\
             \"git_rev\":\"deadbeef0000\",\"host_cpus\":{cpus},\"quantum\":5000,\"reps\":1,\
             \"schema_version\":{BENCH_HISTORY_SCHEMA_VERSION},\"seed\":43,\
             \"target\":\"{target}\",\"unix_ms\":0}}",
            p50 * 10.0,
            p50 * 10.0,
        );
        append_history_line(&history, &slow).unwrap();
        let regressed = run(&args(&["bench", "diff", "--results", &results_s])).unwrap_err();
        match &regressed {
            CliError::Regression(report) => {
                assert!(report.contains("REGRESSED"), "{report}");
                assert!(report.contains("deadbeef0000"), "{report}");
            }
            other => panic!("expected CliError::Regression, got {other:?}"),
        }
        // An explicit revision prefix resolves among earlier records:
        // pinning the baseline to the honest first run still flags the
        // synthetic slow record (now the newest) as a regression.
        let first_line = std::fs::read_to_string(&history)
            .unwrap()
            .lines()
            .next()
            .map(str::to_owned)
            .unwrap();
        let first: serde_json::Value = serde_json::from_str(&first_line).unwrap();
        let real_rev = first["git_rev"].as_str().unwrap().to_owned();
        let prefix = &real_rev[..4.min(real_rev.len())];
        let vs_rev = run(&args(&[
            "bench",
            "diff",
            "--results",
            &results_s,
            "--against",
            prefix,
        ]))
        .unwrap_err();
        assert!(
            matches!(vs_rev, CliError::Regression(_)),
            "expected a regression against rev `{prefix}`: {vs_rev:?}"
        );
        // A prefix matching nothing is a plain error, not a regression.
        let nope = run(&args(&[
            "bench",
            "diff",
            "--results",
            &results_s,
            "--against",
            "ffffffffffff",
        ]))
        .unwrap_err();
        assert!(matches!(nope, CliError::Io(_)), "{nope:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn history_record_json_round_trips_through_the_parser() {
        let rows = vec![
            SimBenchRow {
                sim_threads: 1,
                p50: 0.5,
                p95: 0.6,
                speedup: 1.0,
            },
            SimBenchRow {
                sim_threads: 4,
                p50: 0.2,
                p95: 0.25,
                speedup: 2.5,
            },
        ];
        let line = history_record_json(
            "abc123def456",
            &BenchRun {
                cores: 8,
                budget: 100_000,
                quantum: 10_000,
                reps: 3,
                seed: 43,
            },
            &rows,
        );
        let v: serde_json::Value = serde_json::from_str(&line).unwrap();
        let rec = parse_history_record(&v).unwrap();
        assert_eq!(rec.git_rev, "abc123def456");
        assert_eq!(rec.cores, 8);
        assert_eq!(rec.entries.len(), 2);
        assert_eq!(rec.entries[1].sim_threads, 4);
        assert!((rec.entries[1].p50 - 0.2).abs() < 1e-9);
        assert!((rec.entries[0].p95 - 0.6).abs() < 1e-9);
        assert_eq!(
            v["schema_version"].as_u64(),
            Some(u64::from(BENCH_HISTORY_SCHEMA_VERSION))
        );
    }
}
