//! # sms-obs — unified observability substrate
//!
//! A zero-dependency (std-only) instrumentation layer shared by every
//! crate in the workspace:
//!
//! * a [`Registry`] of atomic [`Counter`]s, [`Gauge`]s and log2-bucketed
//!   [`Histogram`]s, organised into labeled [`Family`]s, exported as
//!   Prometheus text exposition or canonical JSON ([`mod@registry`]),
//! * bounded-ring span tracing with an RAII guard API and Chrome
//!   `trace_event` JSON export, loadable in Perfetto or
//!   `chrome://tracing` ([`trace`]),
//! * the [`TimelineSink`] trait plus [`NullSink`]/[`RecordingSink`] for
//!   time-resolved sample streams that cost ~nothing when disabled
//!   ([`timeline`]),
//! * scoped phase timers ([`Profiler`]/[`NullProfiler`]) aggregating
//!   into a per-run [`PhaseProfile`] with text-table, collapsed-stack
//!   and canonical-JSON rendering ([`prof`]).
//!
//! # Example
//!
//! ```
//! use sms_obs::{registry, tracer, Registry};
//!
//! // Process-wide metrics: cheap atomic handles on the hot path.
//! let runs = registry().counter("doc_runs_total", "Completed runs");
//! runs.inc();
//!
//! // Isolated registry (e.g. one per server) with a labeled family.
//! let local = Registry::new();
//! let requests = local.counter_family("doc_requests_total", "By endpoint", &["endpoint"]);
//! requests.with(&["predict"]).inc_by(3);
//! assert!(local.prometheus_text().contains("doc_requests_total{endpoint=\"predict\"} 3"));
//!
//! // Span tracing: inert unless enabled.
//! tracer().set_enabled(true);
//! {
//!     let _span = tracer().span("phase", "doc").arg("k", "v");
//! }
//! assert!(tracer().chrome_json().contains("\"name\":\"phase\""));
//! # sms_obs::tracer().set_enabled(false);
//! # sms_obs::tracer().clear();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod export;
pub mod prof;
pub mod registry;
pub mod timeline;
pub mod trace;

pub use prof::{NullProfiler, Phase, PhaseGuard, PhaseProfile, PhaseStat, Profiler};
pub use registry::{
    bucket_bound, Counter, Family, Gauge, Histogram, HistogramSnapshot, Metric, MetricKind,
    Registry, HISTOGRAM_BOUNDS,
};
pub use timeline::{NullSink, RecordingSink, TimelineSink};
pub use trace::{Span, TraceEvent, Tracer, DEFAULT_TRACE_CAPACITY};

/// The process-wide metrics registry (shorthand for
/// [`Registry::global`]).
pub fn registry() -> &'static Registry {
    Registry::global()
}

/// The process-wide tracer (shorthand for [`Tracer::global`]).
pub fn tracer() -> &'static Tracer {
    Tracer::global()
}
