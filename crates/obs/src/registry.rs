//! The metrics registry: atomic counters, gauges and log-bucketed
//! histograms organised into labeled families.
//!
//! Hot paths hold `Arc` handles to individual metrics and update them
//! with relaxed atomics — no lock, no allocation, no formatting. The
//! registry itself is only locked when a family is first created or when
//! a snapshot is exported ([`Registry::prometheus_text`],
//! [`Registry::to_json`]).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use crate::export;

/// Lock a mutex, recovering from poisoning: a metrics substrate must keep
/// counting even after some unrelated thread panicked mid-update.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    // sms-lint: atomic(counter): the metric payload itself, export-only reads
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn inc_by(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down. Stored as `f64` bits in an
/// atomic word.
#[derive(Debug, Default)]
pub struct Gauge {
    // sms-lint: atomic(metric): f64-bits gauge word, export-only reads
    value: AtomicU64,
}

impl Gauge {
    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        self.value.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (may be negative) with a compare-and-swap loop.
    pub fn add(&self, delta: f64) {
        let mut current = self.value.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.value.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.value.load(Ordering::Relaxed))
    }
}

/// Number of finite histogram bucket bounds; bound `i` is `2^i`, so the
/// finite range covers `1 ..= 2^31`. Values beyond fall into the overflow
/// (`+Inf`) bucket.
pub const HISTOGRAM_BOUNDS: usize = 32;

/// A log2-bucketed histogram of `u64` observations (unit-agnostic:
/// microseconds, cycles, bytes — the metric name carries the unit).
///
/// Bucket `i` (`i < HISTOGRAM_BOUNDS`) counts observations `v` with
/// `prev_bound < v <= 2^i` (bucket 0 covers `0..=1`); the final bucket is
/// the overflow. Counts are per-bucket internally and cumulated on export
/// as the Prometheus format requires.
#[derive(Debug)]
pub struct Histogram {
    // sms-lint: atomic(counter): per-bucket observation tallies, export-only reads
    buckets: [AtomicU64; HISTOGRAM_BOUNDS + 1],
    // sms-lint: atomic(counter): observed-value accumulator, export-only reads
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// Index of the bucket an observation falls into.
#[inline]
fn bucket_for(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        let idx = 64 - (v - 1).leading_zeros() as usize;
        idx.min(HISTOGRAM_BOUNDS)
    }
}

/// Inclusive upper bound of finite bucket `i`.
pub fn bucket_bound(i: usize) -> u64 {
    debug_assert!(i < HISTOGRAM_BOUNDS);
    1u64 << i
}

/// Point-in-time copy of one histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) observation counts; the last entry is
    /// the overflow bucket.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_for(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Fold another histogram's counts into this one (same fixed bucket
    /// layout, so the merge is exact).
    pub fn merge(&self, other: &Self) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            // sms-lint: atomic(counter): bucket tallies via local bindings
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        // sms-lint: atomic(counter): bucket tallies via local binding
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Copy out the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            // sms-lint: atomic(counter): bucket tallies via local binding
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// What kind of metric a family holds (drives the Prometheus `# TYPE`
/// line and the JSON `kind` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Up/down gauge.
    Gauge,
    /// Log-bucketed histogram.
    Histogram,
}

impl MetricKind {
    /// The Prometheus exposition name of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Counter => "counter",
            Self::Gauge => "gauge",
            Self::Histogram => "histogram",
        }
    }
}

/// Implemented by the three metric types so [`Family`] can be generic.
pub trait Metric: Default + Send + Sync + 'static {
    /// The family kind reported for this metric type.
    fn kind() -> MetricKind;
}

impl Metric for Counter {
    fn kind() -> MetricKind {
        MetricKind::Counter
    }
}
impl Metric for Gauge {
    fn kind() -> MetricKind {
        MetricKind::Gauge
    }
}
impl Metric for Histogram {
    fn kind() -> MetricKind {
        MetricKind::Histogram
    }
}

/// A named set of metrics of one kind, distinguished by label values.
///
/// A family with no label names has exactly one child (the metric
/// itself); a labeled family creates children on first use of each label
/// combination.
#[derive(Debug)]
pub struct Family<M: Metric> {
    name: String,
    help: String,
    label_names: Vec<String>,
    children: Mutex<BTreeMap<Vec<String>, Arc<M>>>,
}

impl<M: Metric> Family<M> {
    fn new(name: &str, help: &str, label_names: &[&str]) -> Self {
        Self {
            name: name.to_owned(),
            help: help.to_owned(),
            label_names: label_names.iter().map(|&l| l.to_owned()).collect(),
            children: Mutex::new(BTreeMap::new()),
        }
    }

    /// The family name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The help text.
    pub fn help(&self) -> &str {
        &self.help
    }

    /// The label names, in declaration order.
    pub fn label_names(&self) -> &[String] {
        &self.label_names
    }

    /// The child for the given label values, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if the number of values differs from the family's label
    /// names (a programming error at the call site).
    pub fn with(&self, label_values: &[&str]) -> Arc<M> {
        assert_eq!(
            label_values.len(),
            self.label_names.len(),
            "family `{}` takes {} label value(s), got {}",
            self.name,
            self.label_names.len(),
            label_values.len()
        );
        let key: Vec<String> = label_values.iter().map(|&v| v.to_owned()).collect();
        let mut children = lock(&self.children);
        Arc::clone(children.entry(key).or_default())
    }

    /// All children as `(label values, metric)` pairs, sorted by labels.
    pub fn children(&self) -> Vec<(Vec<String>, Arc<M>)> {
        lock(&self.children)
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }
}

/// A type-erased family, as stored in the registry.
#[derive(Debug, Clone)]
pub(crate) enum AnyFamily {
    /// A counter family.
    Counter(Arc<Family<Counter>>),
    /// A gauge family.
    Gauge(Arc<Family<Gauge>>),
    /// A histogram family.
    Histogram(Arc<Family<Histogram>>),
}

impl AnyFamily {
    pub(crate) fn kind(&self) -> MetricKind {
        match self {
            Self::Counter(_) => MetricKind::Counter,
            Self::Gauge(_) => MetricKind::Gauge,
            Self::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// A collection of metric families with stable, sorted iteration order.
///
/// One process-wide instance is available via [`Registry::global`] (or
/// the crate-level [`crate::registry()`] shorthand); components that need
/// isolation (tests, one registry per server) construct their own with
/// [`Registry::new`].
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, AnyFamily>>,
}

/// Whether `name` is a valid Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn family<M: Metric>(
        &self,
        name: &str,
        help: &str,
        label_names: &[&str],
        wrap: fn(Arc<Family<M>>) -> AnyFamily,
        unwrap: fn(&AnyFamily) -> Option<Arc<Family<M>>>,
    ) -> Arc<Family<M>> {
        assert!(
            valid_metric_name(name),
            "invalid metric name `{name}` (want [a-zA-Z_:][a-zA-Z0-9_:]*)"
        );
        let mut families = lock(&self.families);
        if let Some(existing) = families.get(name) {
            let Some(family) = unwrap(existing) else {
                // sms-lint: allow(E1): re-registering a name as a different kind is a programmer error
                panic!(
                    "metric `{name}` already registered as a {}, requested as a {}",
                    existing.kind().as_str(),
                    M::kind().as_str()
                );
            };
            assert_eq!(
                family.label_names(),
                label_names,
                "metric `{name}` re-registered with different label names"
            );
            return family;
        }
        let family = Arc::new(Family::new(name, help, label_names));
        families.insert(name.to_owned(), wrap(Arc::clone(&family)));
        family
    }

    /// Get or create a labeled counter family.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid metric name, or is already
    /// registered with a different kind or different label names.
    pub fn counter_family(
        &self,
        name: &str,
        help: &str,
        label_names: &[&str],
    ) -> Arc<Family<Counter>> {
        self.family(name, help, label_names, AnyFamily::Counter, |f| match f {
            AnyFamily::Counter(c) => Some(Arc::clone(c)),
            _ => None,
        })
    }

    /// Get or create a labeled gauge family (panics as
    /// [`Registry::counter_family`]).
    pub fn gauge_family(&self, name: &str, help: &str, label_names: &[&str]) -> Arc<Family<Gauge>> {
        self.family(name, help, label_names, AnyFamily::Gauge, |f| match f {
            AnyFamily::Gauge(g) => Some(Arc::clone(g)),
            _ => None,
        })
    }

    /// Get or create a labeled histogram family (panics as
    /// [`Registry::counter_family`]).
    pub fn histogram_family(
        &self,
        name: &str,
        help: &str,
        label_names: &[&str],
    ) -> Arc<Family<Histogram>> {
        self.family(name, help, label_names, AnyFamily::Histogram, |f| match f {
            AnyFamily::Histogram(h) => Some(Arc::clone(h)),
            _ => None,
        })
    }

    /// Get or create an unlabeled counter (panics as
    /// [`Registry::counter_family`]).
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_family(name, help, &[]).with(&[])
    }

    /// Get or create an unlabeled gauge (panics as
    /// [`Registry::counter_family`]).
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_family(name, help, &[]).with(&[])
    }

    /// Get or create an unlabeled histogram (panics as
    /// [`Registry::counter_family`]).
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_family(name, help, &[]).with(&[])
    }

    /// Snapshot of the registered families, sorted by name.
    pub(crate) fn families(&self) -> Vec<(String, AnyFamily)> {
        lock(&self.families)
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Number of registered families.
    pub fn len(&self) -> usize {
        lock(&self.families).len()
    }

    /// Whether no family is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render every family in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers followed by one
    /// sample line per child, histogram children expanded into
    /// cumulative `_bucket{le=...}` series plus `_sum` and `_count`.
    pub fn prometheus_text(&self) -> String {
        export::prometheus_text(self)
    }

    /// Render every family as one canonical JSON object: keys sorted,
    /// stable field order, no non-deterministic content — suitable for
    /// embedding in run manifests and comparing across runs.
    pub fn to_json(&self) -> String {
        export::registry_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("obs_test_total", "test counter");
        c.inc();
        c.inc_by(4);
        assert_eq!(c.get(), 5);
        // Same handle comes back on re-registration.
        assert_eq!(r.counter("obs_test_total", "test counter").get(), 5);

        let g = r.gauge("obs_gauge", "test gauge");
        g.set(2.5);
        g.add(-1.0);
        assert!((g.get() - 1.5).abs() < 1e-12);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn labeled_family_children_are_distinct() {
        let r = Registry::new();
        let fam = r.counter_family("obs_requests_total", "by endpoint", &["endpoint"]);
        fam.with(&["predict"]).inc_by(3);
        fam.with(&["models"]).inc();
        assert_eq!(fam.with(&["predict"]).get(), 3);
        assert_eq!(fam.with(&["models"]).get(), 1);
        assert_eq!(fam.children().len(), 2);
    }

    #[test]
    #[should_panic(expected = "label value(s)")]
    fn wrong_label_arity_panics() {
        let r = Registry::new();
        let fam = r.counter_family("obs_labeled", "l", &["a", "b"]);
        let _ = fam.with(&["only-one"]);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("obs_dual", "as counter");
        let _ = r.gauge("obs_dual", "as gauge");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_panics() {
        let r = Registry::new();
        let _ = r.counter("bad name!", "nope");
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Boundary values land in the bucket whose inclusive upper bound
        // they equal; bound+1 lands in the next.
        assert_eq!(bucket_for(0), 0);
        assert_eq!(bucket_for(1), 0);
        assert_eq!(bucket_for(2), 1);
        assert_eq!(bucket_for(3), 2);
        assert_eq!(bucket_for(4), 2);
        assert_eq!(bucket_for(5), 3);
        for i in 1..HISTOGRAM_BOUNDS {
            assert_eq!(bucket_for(bucket_bound(i)), i, "bound 2^{i} inclusive");
            assert_eq!(bucket_for(bucket_bound(i) + 1), i + 1, "2^{i}+1 in next");
        }
    }

    #[test]
    fn histogram_overflow_bucket() {
        let h = Histogram::default();
        h.observe(1 << 31); // largest finite bound, inclusive
        h.observe((1 << 31) + 1); // first overflow value
        h.observe(u64::MAX / 2);
        let s = h.snapshot();
        assert_eq!(s.buckets[HISTOGRAM_BOUNDS - 1], 1);
        assert_eq!(s.buckets[HISTOGRAM_BOUNDS], 2, "overflow bucket");
        assert_eq!(s.count, 3);
    }

    #[test]
    fn histogram_merge_is_exact() {
        let a = Histogram::default();
        let b = Histogram::default();
        for v in [0, 1, 2, 100, 5_000_000] {
            a.observe(v);
        }
        for v in [1, 7, 1 << 40] {
            b.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 8);
        assert_eq!(a.sum(), 1 + 2 + 100 + 5_000_000 + 1 + 7 + (1u64 << 40));
        let sa = a.snapshot();
        // Bucket 0 covers 0..=1: values 0, 1 from `a` and 1 from `b`.
        assert_eq!(sa.buckets[0], 3);
        assert_eq!(sa.buckets[HISTOGRAM_BOUNDS], 1, "1<<40 overflows");
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let r = Registry::new();
        let c = r.counter("obs_mt_total", "mt");
        let h = r.histogram("obs_mt_hist", "mt");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for i in 0..1000 {
                        c.inc();
                        h.observe(i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(h.count(), 8000);
    }
}
