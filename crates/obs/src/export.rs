//! Textual exporters for the registry: Prometheus exposition format
//! (version 0.0.4) and canonical JSON.
//!
//! Both are hand-rolled on `std` so the crate stays dependency-free; the
//! JSON form sorts every key and renders deterministically so registry
//! snapshots can be embedded in run manifests and diffed across runs.

use crate::registry::{
    bucket_bound, AnyFamily, Family, HistogramSnapshot, Metric, Registry, HISTOGRAM_BOUNDS,
};

/// Escape a Prometheus HELP string: backslash and newline.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape a Prometheus label value: backslash, double-quote, newline.
fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Render a `{k="v",...}` label block; empty labels render as nothing.
/// `extra` appends one more pair (used for histogram `le`).
fn label_block(names: &[String], values: &[String], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = names
        .iter()
        .zip(values)
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Format an `f64` sample value the way Prometheus expects
/// (`NaN`, `+Inf`, `-Inf` for the non-finite cases).
fn fmt_prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

fn push_header(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str(&format!("# HELP {name} {}\n", escape_help(help)));
    out.push_str(&format!("# TYPE {name} {kind}\n"));
}

fn push_scalar_family<M: Metric>(
    out: &mut String,
    family: &Family<M>,
    value_of: impl Fn(&M) -> String,
) {
    push_header(out, family.name(), family.help(), M::kind().as_str());
    for (labels, metric) in family.children() {
        let block = label_block(family.label_names(), &labels, None);
        out.push_str(&format!("{}{block} {}\n", family.name(), value_of(&metric)));
    }
}

fn push_histogram_child(
    out: &mut String,
    name: &str,
    names: &[String],
    labels: &[String],
    snap: &HistogramSnapshot,
) {
    let mut cumulative = 0u64;
    for (i, count) in snap.buckets.iter().take(HISTOGRAM_BOUNDS).enumerate() {
        cumulative += count;
        let le = bucket_bound(i).to_string();
        let block = label_block(names, labels, Some(("le", &le)));
        out.push_str(&format!("{name}_bucket{block} {cumulative}\n"));
    }
    let block = label_block(names, labels, Some(("le", "+Inf")));
    out.push_str(&format!("{name}_bucket{block} {}\n", snap.count));
    let block = label_block(names, labels, None);
    out.push_str(&format!("{name}_sum{block} {}\n", snap.sum));
    out.push_str(&format!("{name}_count{block} {}\n", snap.count));
}

/// Render the whole registry in the Prometheus text exposition format.
pub(crate) fn prometheus_text(registry: &Registry) -> String {
    let mut out = String::new();
    for (name, family) in registry.families() {
        match family {
            AnyFamily::Counter(f) => push_scalar_family(&mut out, &f, |c| c.get().to_string()),
            AnyFamily::Gauge(f) => push_scalar_family(&mut out, &f, |g| fmt_prom_f64(g.get())),
            AnyFamily::Histogram(f) => {
                push_header(&mut out, &name, f.help(), "histogram");
                for (labels, metric) in f.children() {
                    push_histogram_child(
                        &mut out,
                        &name,
                        f.label_names(),
                        &labels,
                        &metric.snapshot(),
                    );
                }
            }
        }
    }
    out
}

/// Escape a string for embedding in a JSON document.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A finite `f64` as a JSON number; non-finite values become `null`
/// (JSON has no NaN/Inf).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

fn json_string_array(items: &[String]) -> String {
    let quoted: Vec<String> = items
        .iter()
        .map(|s| format!("\"{}\"", escape_json(s)))
        .collect();
    format!("[{}]", quoted.join(","))
}

fn json_u64_array(items: &[u64]) -> String {
    let rendered: Vec<String> = items.iter().map(|v| v.to_string()).collect();
    format!("[{}]", rendered.join(","))
}

fn json_family<M: Metric>(
    family: &Family<M>,
    sample_of: impl Fn(&[String], &M) -> String,
) -> String {
    let samples: Vec<String> = family
        .children()
        .iter()
        .map(|(labels, metric)| sample_of(labels, metric))
        .collect();
    format!(
        "{{\"help\":\"{}\",\"kind\":\"{}\",\"label_names\":{},\"samples\":[{}]}}",
        escape_json(family.help()),
        M::kind().as_str(),
        json_string_array(family.label_names()),
        samples.join(",")
    )
}

/// Render the whole registry as one canonical JSON object keyed by family
/// name (keys sorted, fixed field order inside each object).
pub(crate) fn registry_json(registry: &Registry) -> String {
    let mut entries = Vec::new();
    for (name, family) in registry.families() {
        let body = match family {
            AnyFamily::Counter(f) => json_family(&f, |labels, c| {
                format!(
                    "{{\"labels\":{},\"value\":{}}}",
                    json_string_array(labels),
                    c.get()
                )
            }),
            AnyFamily::Gauge(f) => json_family(&f, |labels, g| {
                format!(
                    "{{\"labels\":{},\"value\":{}}}",
                    json_string_array(labels),
                    json_f64(g.get())
                )
            }),
            AnyFamily::Histogram(f) => json_family(&f, |labels, h| {
                let snap = h.snapshot();
                format!(
                    "{{\"buckets\":{},\"count\":{},\"labels\":{},\"sum\":{}}}",
                    json_u64_array(&snap.buckets),
                    snap.count,
                    json_string_array(labels),
                    snap.sum
                )
            }),
        };
        entries.push(format!("\"{}\":{body}", escape_json(&name)));
    }
    format!("{{{}}}", entries.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_golden_counter_and_gauge() {
        let r = Registry::new();
        r.counter("sms_runs_total", "Total runs").inc_by(42);
        r.gauge("sms_queue_depth", "Current queue depth").set(3.5);
        let text = r.prometheus_text();
        let expected = "\
# HELP sms_queue_depth Current queue depth
# TYPE sms_queue_depth gauge
sms_queue_depth 3.5
# HELP sms_runs_total Total runs
# TYPE sms_runs_total counter
sms_runs_total 42
";
        assert_eq!(text, expected);
    }

    #[test]
    fn prometheus_label_value_escaping() {
        let r = Registry::new();
        let fam = r.counter_family("sms_weird_total", "Weird labels", &["path"]);
        fam.with(&["a\\b\"c\nd"]).inc();
        let text = r.prometheus_text();
        assert!(
            text.contains("sms_weird_total{path=\"a\\\\b\\\"c\\nd\"} 1"),
            "escaped label missing from:\n{text}"
        );
    }

    #[test]
    fn prometheus_help_escaping_and_nonfinite_gauge() {
        let r = Registry::new();
        r.gauge("sms_ratio", "line1\nline2 \\ backslash")
            .set(f64::INFINITY);
        let text = r.prometheus_text();
        assert!(text.contains("# HELP sms_ratio line1\\nline2 \\\\ backslash"));
        assert!(text.contains("sms_ratio +Inf"));
    }

    #[test]
    fn prometheus_histogram_is_cumulative_with_inf() {
        let r = Registry::new();
        let h = r.histogram("sms_lat_micros", "Latency");
        h.observe(1); // bucket le="1"
        h.observe(2); // bucket le="2"
        h.observe(3); // bucket le="4"
        h.observe(1 << 40); // overflow
        let text = r.prometheus_text();
        assert!(text.contains("# TYPE sms_lat_micros histogram"));
        assert!(text.contains("sms_lat_micros_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("sms_lat_micros_bucket{le=\"2\"} 2\n"));
        assert!(text.contains("sms_lat_micros_bucket{le=\"4\"} 3\n"));
        // Cumulative count carries through the untouched buckets.
        assert!(text.contains("sms_lat_micros_bucket{le=\"2147483648\"} 3\n"));
        assert!(text.contains("sms_lat_micros_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("sms_lat_micros_sum 1099511627782\n"));
        assert!(text.contains("sms_lat_micros_count 4\n"));
    }

    #[test]
    fn json_is_canonical_and_sorted() {
        let r = Registry::new();
        r.counter("zeta_total", "Z").inc();
        r.gauge("alpha_gauge", "A").set(1.0);
        let json = r.to_json();
        let alpha = json.find("alpha_gauge").unwrap();
        let zeta = json.find("zeta_total").unwrap();
        assert!(alpha < zeta, "keys must be sorted: {json}");
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"kind\":\"gauge\""));
        // Stable across repeated export.
        assert_eq!(json, r.to_json());
    }

    #[test]
    fn json_escapes_and_nonfinite() {
        let r = Registry::new();
        r.gauge("g_nan", "has \"quotes\" and \\slashes\\")
            .set(f64::NAN);
        let json = r.to_json();
        assert!(json.contains("has \\\"quotes\\\" and \\\\slashes\\\\"));
        assert!(json.contains("\"value\":null"));
    }
}
