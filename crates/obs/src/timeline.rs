//! Timeline sinks: a minimal push interface for time-resolved samples.
//!
//! Producers (e.g. `sms-sim`'s windowed-sync loop) are generic over
//! [`TimelineSink`] and guard sample *construction* on
//! [`TimelineSink::enabled`], so a [`NullSink`] — whose `enabled` is a
//! compile-time `false` — costs nothing on the hot path. The sample type
//! `S` is owned by the producer; this crate only defines the plumbing.

/// Receives time-ordered samples of type `S`.
pub trait TimelineSink<S> {
    /// Whether the producer should build and push samples at all.
    /// Producers must skip sample construction when this is `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Accept one sample.
    fn record(&mut self, sample: S);
}

/// A sink that discards everything; `enabled()` is `false` so producers
/// skip sampling work entirely.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl<S> TimelineSink<S> for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _sample: S) {}
}

/// A sink that keeps every sample in memory, in arrival order.
#[derive(Debug)]
pub struct RecordingSink<S> {
    samples: Vec<S>,
}

impl<S> Default for RecordingSink<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> RecordingSink<S> {
    /// An empty recording sink.
    pub fn new() -> Self {
        Self {
            samples: Vec::new(),
        }
    }

    /// The samples recorded so far.
    pub fn samples(&self) -> &[S] {
        &self.samples
    }

    /// Consume the sink, yielding the recorded samples.
    pub fn into_samples(self) -> Vec<S> {
        self.samples
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

impl<S> TimelineSink<S> for RecordingSink<S> {
    fn record(&mut self, sample: S) {
        self.samples.push(sample);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn produce(sink: &mut dyn TimelineSink<u32>, n: u32) -> u32 {
        let mut built = 0;
        for i in 0..n {
            if sink.enabled() {
                built += 1;
                sink.record(i);
            }
        }
        built
    }

    #[test]
    fn null_sink_skips_sample_construction() {
        let mut sink = NullSink;
        assert_eq!(produce(&mut sink, 10), 0);
    }

    #[test]
    fn recording_sink_keeps_order() {
        let mut sink = RecordingSink::new();
        assert_eq!(produce(&mut sink, 5), 5);
        assert_eq!(sink.samples(), &[0, 1, 2, 3, 4]);
        assert_eq!(sink.into_samples(), vec![0, 1, 2, 3, 4]);
    }
}
