//! Scoped phase timers aggregating into a per-run [`PhaseProfile`].
//!
//! A [`Profiler`] interns [`Phase`] handles by *path* — semicolon-joined
//! like a collapsed flamegraph stack (`sim.run;window.fork;core.step`) —
//! and each [`Phase::scope`] guard adds one count and the elapsed
//! monotonic nanoseconds to its phase when dropped. The design follows
//! the same rule as the rest of `sms-obs`: **the monotonic clock is read
//! only when a profiler is attached**. Consumers hold an
//! `Option<Arc<Phase>>`-shaped handle (see [`NullProfiler`] for the
//! detached end of the API); the detached path is a single branch with no
//! clock read, no atomics, and no allocation, so attaching a profiler
//! cannot perturb deterministic simulation state.
//!
//! [`Profiler::snapshot`] folds the accumulated counters into a
//! [`PhaseProfile`]: per-phase count, total nanoseconds, and *self*
//! nanoseconds (total minus direct children), renderable as an aligned
//! text table ([`PhaseProfile::render_table`]), as collapsed-stack lines
//! compatible with standard flamegraph tooling
//! ([`PhaseProfile::collapsed`]), or as canonical sorted-key JSON
//! ([`PhaseProfile::to_json`]).
//!
//! # Example
//!
//! ```
//! use sms_obs::prof::Profiler;
//!
//! let prof = Profiler::new();
//! let outer = prof.phase("work");
//! let inner = prof.phase("work;inner");
//! {
//!     let _w = outer.scope();
//!     let _i = inner.scope();
//! }
//! let profile = prof.snapshot();
//! assert_eq!(profile.phases.len(), 2);
//! assert!(profile.render_table().contains("work"));
//! assert!(profile.to_json().starts_with('{'));
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::registry::lock;

/// Separator between path segments; the collapsed-stack convention.
pub const PATH_SEPARATOR: char = ';';

/// One named phase: a call count and accumulated wall nanoseconds,
/// updated with relaxed atomics from any thread.
#[derive(Debug, Default)]
pub struct Phase {
    path: String,
    // sms-lint: atomic(counter): completed-scope tally, observation-only
    count: AtomicU64,
    // sms-lint: atomic(counter): wall-nanosecond accumulator, observation-only
    nanos: AtomicU64,
}

impl Phase {
    /// The phase's full path (`parent;child` form).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Completed scopes so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Accumulated nanoseconds so far.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }

    /// Start a timed scope; the elapsed time is recorded when the guard
    /// drops. This reads the monotonic clock — hold a phase handle only
    /// when profiling is wanted (see the module docs).
    #[inline]
    pub fn scope(&self) -> PhaseGuard<'_> {
        PhaseGuard {
            phase: self,
            start: Instant::now(),
        }
    }

    /// Record a completed measurement directly (used when the duration
    /// was measured externally, e.g. folded in from another profile).
    #[inline]
    pub fn record(&self, nanos: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
    }
}

/// RAII guard from [`Phase::scope`]: measures until dropped.
#[must_use = "a phase scope measures until it is dropped; binding it to _ drops immediately"]
#[derive(Debug)]
pub struct PhaseGuard<'a> {
    phase: &'a Phase,
    start: Instant,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        // u64 nanoseconds hold ~584 years; saturate rather than wrap.
        let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.phase.count.fetch_add(1, Ordering::Relaxed);
        self.phase.nanos.fetch_add(nanos, Ordering::Relaxed);
    }
}

/// The detached end of the API: a profiler whose scopes compile to
/// no-ops — no clock read, no atomics. Code paths that accept either a
/// real or a null profiler stay monomorphic and branch-free.
///
/// ```
/// use sms_obs::prof::NullProfiler;
/// let _scope = NullProfiler.scope(); // does nothing, costs nothing
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct NullProfiler;

impl NullProfiler {
    /// A scope that records nothing.
    #[inline]
    pub fn scope(&self) -> NullGuard {
        NullGuard
    }
}

/// The guard type of [`NullProfiler::scope`]; dropping it does nothing.
#[derive(Debug)]
pub struct NullGuard;

/// Interns [`Phase`] handles and snapshots them into a [`PhaseProfile`].
///
/// Hot paths hold `Arc<Phase>` handles obtained once via
/// [`Profiler::phase`]; the profiler itself is locked only on interning
/// and snapshot, never per scope.
#[derive(Debug, Default)]
pub struct Profiler {
    phases: Mutex<BTreeMap<String, Arc<Phase>>>,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// The phase handle for `path`, created on first use. Paths use
    /// [`PATH_SEPARATOR`]-joined segments; a phase is the direct child of
    /// the phase named by everything before its last separator.
    pub fn phase(&self, path: &str) -> Arc<Phase> {
        let mut phases = lock(&self.phases);
        Arc::clone(phases.entry(path.to_owned()).or_insert_with(|| {
            Arc::new(Phase {
                path: path.to_owned(),
                count: AtomicU64::new(0),
                nanos: AtomicU64::new(0),
            })
        }))
    }

    /// Zero every phase's counters (handles stay valid).
    pub fn reset(&self) {
        for phase in lock(&self.phases).values() {
            phase.count.store(0, Ordering::Relaxed);
            phase.nanos.store(0, Ordering::Relaxed);
        }
    }

    /// Fold the current counters into a [`PhaseProfile`] with self-times
    /// computed (total minus direct children, saturating — concurrent
    /// children can legitimately out-sum their parent's wall time).
    pub fn snapshot(&self) -> PhaseProfile {
        let phases = lock(&self.phases);
        let totals: BTreeMap<&str, (u64, u64)> = phases
            .iter()
            .map(|(path, p)| (path.as_str(), (p.count(), p.total_nanos())))
            .collect();
        let stats = totals
            .iter()
            .map(|(path, &(count, total_nanos))| {
                let child_total: u64 = totals
                    .iter()
                    .filter(|(other, _)| is_direct_child(path, other))
                    .map(|(_, &(_, t))| t)
                    .sum();
                PhaseStat {
                    path: (*path).to_owned(),
                    count,
                    total_nanos,
                    self_nanos: total_nanos.saturating_sub(child_total),
                }
            })
            .collect();
        PhaseProfile { phases: stats }
    }
}

/// Whether `child` is a direct child path of `parent`.
fn is_direct_child(parent: &str, child: &str) -> bool {
    child.len() > parent.len() + 1
        && child.starts_with(parent)
        && child.as_bytes()[parent.len()] == PATH_SEPARATOR as u8
        && !child[parent.len() + 1..].contains(PATH_SEPARATOR)
}

/// One phase's aggregated measurements in a [`PhaseProfile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Full phase path (`parent;child` form).
    pub path: String,
    /// Completed scopes.
    pub count: u64,
    /// Total nanoseconds, including time spent in child phases.
    pub total_nanos: u64,
    /// Nanoseconds not attributed to any direct child phase.
    pub self_nanos: u64,
}

impl PhaseStat {
    /// The last path segment.
    pub fn name(&self) -> &str {
        self.path
            .rsplit(PATH_SEPARATOR)
            .next()
            .unwrap_or(self.path.as_str())
    }

    /// Nesting depth (0 for a root phase).
    pub fn depth(&self) -> usize {
        self.path.matches(PATH_SEPARATOR).count()
    }
}

/// A point-in-time aggregation of every phase, sorted by path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Per-phase stats, sorted by path.
    pub phases: Vec<PhaseStat>,
}

impl PhaseProfile {
    /// Whether no phase recorded anything.
    pub fn is_empty(&self) -> bool {
        self.phases.iter().all(|p| p.count == 0)
    }

    /// Sum of every phase's self time — equals the root totals when the
    /// phases nested strictly (single-threaded), and exceeds them when
    /// children ran concurrently.
    pub fn total_self_nanos(&self) -> u64 {
        self.phases.iter().map(|p| p.self_nanos).sum()
    }

    /// Sum of the root phases' total times.
    pub fn root_total_nanos(&self) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.depth() == 0)
            .map(|p| p.total_nanos)
            .sum()
    }

    /// Fold `other` into `self`, summing matching paths and inserting
    /// new ones (used to aggregate per-run profiles across a plan).
    pub fn merge(&mut self, other: &PhaseProfile) {
        for theirs in &other.phases {
            match self.phases.iter_mut().find(|p| p.path == theirs.path) {
                Some(mine) => {
                    mine.count += theirs.count;
                    mine.total_nanos += theirs.total_nanos;
                    mine.self_nanos += theirs.self_nanos;
                }
                None => self.phases.push(theirs.clone()),
            }
        }
        self.phases.sort_by(|a, b| a.path.cmp(&b.path));
    }

    /// Render an aligned text table: phase tree, counts, total/self
    /// milliseconds, and each phase's share of the summed self time.
    pub fn render_table(&self) -> String {
        let self_sum = self.total_self_nanos().max(1);
        let mut rows: Vec<[String; 5]> = vec![[
            "PHASE".to_owned(),
            "COUNT".to_owned(),
            "TOTAL_MS".to_owned(),
            "SELF_MS".to_owned(),
            "SELF%".to_owned(),
        ]];
        for p in &self.phases {
            if p.count == 0 {
                continue;
            }
            rows.push([
                format!("{}{}", "  ".repeat(p.depth()), p.name()),
                p.count.to_string(),
                format!("{:.3}", p.total_nanos as f64 / 1e6),
                format!("{:.3}", p.self_nanos as f64 / 1e6),
                format!("{:.1}", p.self_nanos as f64 / self_sum as f64 * 100.0),
            ]);
        }
        let mut widths = [0usize; 5];
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for row in &rows {
            for (i, (cell, w)) in row.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    out.push_str(&format!("{cell:<w$}"));
                } else {
                    out.push_str(&format!("{cell:>w$}"));
                }
            }
            // Trailing spaces from the left-aligned last column are absent
            // because only column 0 is left-aligned.
            out.push('\n');
        }
        out
    }

    /// Collapsed-stack lines (`path self_nanos`), one per phase with
    /// nonzero self time — the input format of standard flamegraph
    /// tooling (`flamegraph.pl`, inferno, speedscope).
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for p in &self.phases {
            if p.self_nanos > 0 {
                out.push_str(&p.path);
                out.push(' ');
                out.push_str(&p.self_nanos.to_string());
                out.push('\n');
            }
        }
        out
    }

    /// Canonical JSON: sorted keys, phases sorted by path, no
    /// non-deterministic field *shape* (the nanosecond values are host
    /// measurements and of course vary run to run).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"count\":{},\"path\":{},\"self_nanos\":{},\"total_nanos\":{}}}",
                p.count,
                json_string(&p.path),
                p.self_nanos,
                p.total_nanos
            ));
        }
        out.push_str(&format!("],\"schema_version\":{PROFILE_SCHEMA_VERSION}}}"));
        out
    }
}

/// Version of the [`PhaseProfile::to_json`] layout.
pub const PROFILE_SCHEMA_VERSION: u32 = 1;

/// Minimal JSON string escaping (phase paths are plain identifiers, but
/// escape defensively).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_returns_the_same_handle() {
        let prof = Profiler::new();
        let a = prof.phase("x");
        let b = prof.phase("x");
        assert!(Arc::ptr_eq(&a, &b));
        a.record(10);
        assert_eq!(b.count(), 1);
        assert_eq!(b.total_nanos(), 10);
    }

    #[test]
    fn scope_records_count_and_time() {
        let prof = Profiler::new();
        let p = prof.phase("timed");
        for _ in 0..3 {
            let _g = p.scope();
            std::hint::black_box(());
        }
        assert_eq!(p.count(), 3);
        let snap = prof.snapshot();
        assert_eq!(snap.phases.len(), 1);
        assert_eq!(snap.phases[0].count, 3);
        assert_eq!(snap.phases[0].self_nanos, snap.phases[0].total_nanos);
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        let prof = Profiler::new();
        prof.phase("a").record(100);
        prof.phase("a;b").record(30);
        prof.phase("a;b;c").record(10);
        prof.phase("a;d").record(20);
        let snap = prof.snapshot();
        let by_path = |p: &str| {
            snap.phases
                .iter()
                .find(|s| s.path == p)
                .cloned()
                .expect("phase present")
        };
        assert_eq!(by_path("a").self_nanos, 50, "100 - (30 + 20), not - c");
        assert_eq!(by_path("a;b").self_nanos, 20);
        assert_eq!(by_path("a;b;c").self_nanos, 10);
        assert_eq!(snap.total_self_nanos(), 100);
        assert_eq!(snap.root_total_nanos(), 100);
    }

    #[test]
    fn self_time_saturates_when_children_out_sum_parent() {
        // Concurrent children can out-sum the parent's wall time.
        let prof = Profiler::new();
        prof.phase("par").record(100);
        prof.phase("par;w").record(250);
        let snap = prof.snapshot();
        assert_eq!(snap.phases[0].self_nanos, 0);
    }

    #[test]
    fn direct_child_is_exact() {
        assert!(is_direct_child("a", "a;b"));
        assert!(!is_direct_child("a", "a;b;c"));
        assert!(!is_direct_child("a", "ab;c"));
        assert!(!is_direct_child("a;b", "a"));
        assert!(!is_direct_child("a", "a"));
    }

    #[test]
    fn table_collapsed_and_json_render() {
        let prof = Profiler::new();
        prof.phase("sim.run").record(1_000_000);
        prof.phase("sim.run;window.fork").record(600_000);
        let never = prof.phase("sim.run;window.merge");
        let _ = never; // registered but never hit: excluded from the table
        let snap = prof.snapshot();

        let table = snap.render_table();
        assert!(table.contains("PHASE"), "{table}");
        assert!(table.contains("sim.run"), "{table}");
        assert!(table.contains("  window.fork"), "indented child\n{table}");
        assert!(
            !table.contains("window.merge"),
            "zero-count hidden\n{table}"
        );

        let collapsed = snap.collapsed();
        assert!(collapsed.contains("sim.run 400000\n"), "{collapsed}");
        assert!(collapsed.contains("sim.run;window.fork 600000\n"));

        let json = snap.to_json();
        assert!(json.contains("\"schema_version\":1"), "{json}");
        assert!(json.contains("\"path\":\"sim.run;window.fork\""), "{json}");
        // The phases array must actually close (a non-empty profile once
        // rendered `[{...},{...},"schema_version"...` — unparseable).
        assert!(json.ends_with("}],\"schema_version\":1}"), "{json}");
        // Keys are sorted within each object.
        let c = json.find("\"count\"").expect("count key");
        let p = json.find("\"path\"").expect("path key");
        assert!(c < p);
    }

    #[test]
    fn empty_profile_renders_valid_json_and_table() {
        let snap = Profiler::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.to_json(), "{\"phases\":[],\"schema_version\":1}");
        assert!(snap.render_table().contains("PHASE"));
        assert_eq!(snap.collapsed(), "");
    }

    #[test]
    fn merge_sums_and_inserts() {
        let a = Profiler::new();
        a.phase("x").record(10);
        let b = Profiler::new();
        b.phase("x").record(5);
        b.phase("y").record(7);
        let mut pa = a.snapshot();
        pa.merge(&b.snapshot());
        assert_eq!(pa.phases.len(), 2);
        assert_eq!(pa.phases[0].path, "x");
        assert_eq!(pa.phases[0].total_nanos, 15);
        assert_eq!(pa.phases[0].count, 2);
        assert_eq!(pa.phases[1].total_nanos, 7);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let prof = Profiler::new();
        let p = prof.phase("z");
        p.record(9);
        prof.reset();
        assert_eq!(p.count(), 0);
        assert_eq!(p.total_nanos(), 0);
        p.record(1);
        assert_eq!(prof.snapshot().phases[0].count, 1);
    }

    #[test]
    fn concurrent_scopes_do_not_lose_counts() {
        let prof = Profiler::new();
        let p = prof.phase("mt");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..500 {
                        let _g = p.scope();
                    }
                });
            }
        });
        assert_eq!(p.count(), 2000);
    }
}
