//! Lightweight span tracing with Chrome `trace_event` export.
//!
//! A [`Tracer`] records completed spans and instant events into a bounded
//! in-memory ring; when the ring is full the oldest events are dropped
//! and counted — per tracer via [`Tracer::dropped`] and process-wide in
//! the exported `sms_obs_spans_dropped_total` counter. Spans are RAII guards: [`Tracer::span`] starts one, and
//! dropping it records a complete (`ph: "X"`) event with the measured
//! duration. When the tracer is disabled — the default — `span` returns
//! an inert guard without allocating, so instrumented code pays only an
//! atomic load.
//!
//! [`Tracer::chrome_json`] renders the ring in the Chrome trace-event
//! JSON format, loadable in Perfetto or `chrome://tracing`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::export::escape_json;
use crate::registry::{lock, Counter, Registry};

/// Default ring capacity of the global tracer.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Process-wide count of events evicted from *any* tracer ring because
/// it was full. Registered in the global [`Registry`] so overflow shows
/// up in the Prometheus/JSON exports instead of silently truncating
/// traces; each [`Tracer`] additionally keeps its own
/// [`dropped`](Tracer::dropped) tally.
fn spans_dropped_total() -> &'static Counter {
    static COUNTER: OnceLock<std::sync::Arc<Counter>> = OnceLock::new();
    COUNTER.get_or_init(|| {
        Registry::global().counter(
            "sms_obs_spans_dropped_total",
            "Trace events evicted because a tracer ring was full",
        )
    })
}

/// Sequential id assigned to each thread the first time it records an
/// event (Chrome trace `tid`; stable within a process run).
fn current_tid() -> u64 {
    // sms-lint: atomic(counter): thread-id dispenser; fetch_add alone makes ids unique
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// One recorded event: a completed span (`ph == 'X'`) or an instant
/// marker (`ph == 'i'`).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event name.
    pub name: String,
    /// Category (used by trace viewers to group and filter).
    pub cat: String,
    /// Chrome phase code: `'X'` complete span, `'i'` instant.
    pub ph: char,
    /// Microseconds since the tracer's epoch.
    pub ts_micros: u64,
    /// Span duration in microseconds (zero for instants).
    pub dur_micros: u64,
    /// Recording thread's sequential id.
    pub tid: u64,
    /// Key/value annotations rendered into the event's `args` object.
    pub args: Vec<(String, String)>,
}

/// Bounded-ring span recorder; see the [module docs](self).
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    capacity: usize,
    ring: Mutex<VecDeque<TraceEvent>>,
    // sms-lint: atomic(counter): shed-event tally, reported in export only
    dropped: AtomicU64,
}

impl Tracer {
    /// A disabled tracer with the given ring capacity (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// The process-wide tracer ([`DEFAULT_TRACE_CAPACITY`] events).
    pub fn global() -> &'static Tracer {
        static GLOBAL: OnceLock<Tracer> = OnceLock::new();
        GLOBAL.get_or_init(|| Tracer::new(DEFAULT_TRACE_CAPACITY))
    }

    /// Turn recording on or off.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Release);
    }

    /// Whether events are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Start a span; the returned guard records a complete event when
    /// dropped. Inert (no allocation, nothing recorded) while the tracer
    /// is disabled.
    pub fn span(&self, name: &str, cat: &str) -> Span<'_> {
        if !self.is_enabled() {
            return Span { inner: None };
        }
        Span {
            inner: Some(SpanInner {
                tracer: self,
                name: name.to_owned(),
                cat: cat.to_owned(),
                start: Instant::now(),
                args: Vec::new(),
            }),
        }
    }

    /// Record an instant event (a point-in-time marker).
    pub fn instant(&self, name: &str, cat: &str) {
        if !self.is_enabled() {
            return;
        }
        self.push(TraceEvent {
            name: name.to_owned(),
            cat: cat.to_owned(),
            ph: 'i',
            ts_micros: self.now_micros(),
            dur_micros: 0,
            tid: current_tid(),
            args: Vec::new(),
        });
    }

    fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn push(&self, event: TraceEvent) {
        let mut ring = lock(&self.ring);
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
            spans_dropped_total().inc();
        }
        ring.push_back(event);
    }

    /// Number of events currently in the ring.
    pub fn len(&self) -> usize {
        lock(&self.ring).len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Discard all recorded events (the dropped count is kept).
    pub fn clear(&self) {
        lock(&self.ring).clear();
    }

    /// Copy out the recorded events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        lock(&self.ring).iter().cloned().collect()
    }

    /// Render the ring as Chrome trace-event JSON
    /// (`{"displayTimeUnit":"ms","traceEvents":[...]}`), non-destructively.
    pub fn chrome_json(&self) -> String {
        let events = self.events();
        let rendered: Vec<String> = events.iter().map(chrome_event_json).collect();
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}",
            rendered.join(",")
        )
    }
}

fn chrome_event_json(e: &TraceEvent) -> String {
    let args: Vec<String> = e
        .args
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)))
        .collect();
    let mut out = format!(
        "{{\"args\":{{{}}},\"cat\":\"{}\",",
        args.join(","),
        escape_json(&e.cat)
    );
    if e.ph == 'X' {
        out.push_str(&format!("\"dur\":{},", e.dur_micros));
    }
    out.push_str(&format!(
        "\"name\":\"{}\",\"ph\":\"{}\",\"pid\":1,",
        escape_json(&e.name),
        e.ph
    ));
    if e.ph == 'i' {
        // Thread-scoped instant marker.
        out.push_str("\"s\":\"t\",");
    }
    out.push_str(&format!("\"tid\":{},\"ts\":{}}}", e.tid, e.ts_micros));
    out
}

#[derive(Debug)]
struct SpanInner<'a> {
    tracer: &'a Tracer,
    name: String,
    cat: String,
    start: Instant,
    args: Vec<(String, String)>,
}

/// RAII span guard returned by [`Tracer::span`]; records a complete
/// trace event on drop.
#[derive(Debug)]
#[must_use = "a span measures until it is dropped; binding it to `_` drops it immediately"]
pub struct Span<'a> {
    inner: Option<SpanInner<'a>>,
}

impl Span<'_> {
    /// Attach a key/value annotation (no-op on an inert guard).
    pub fn arg(mut self, key: &str, value: &str) -> Self {
        if let Some(inner) = &mut self.inner {
            inner.args.push((key.to_owned(), value.to_owned()));
        }
        self
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        // Re-check: tracing may have been turned off mid-span.
        if !inner.tracer.is_enabled() {
            return;
        }
        let dur = inner.start.elapsed().as_micros() as u64;
        let ts = inner.start.duration_since(inner.tracer.epoch).as_micros() as u64;
        inner.tracer.push(TraceEvent {
            name: inner.name,
            cat: inner.cat,
            ph: 'X',
            ts_micros: ts,
            dur_micros: dur,
            tid: current_tid(),
            args: inner.args,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(16);
        {
            let _s = t.span("noop", "test");
        }
        t.instant("marker", "test");
        assert!(t.is_empty());
    }

    #[test]
    fn span_guard_records_complete_event() {
        let t = Tracer::new(16);
        t.set_enabled(true);
        {
            let _s = t.span("work", "bench").arg("label", "mix-a");
        }
        let events = t.events();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.name, "work");
        assert_eq!(e.cat, "bench");
        assert_eq!(e.ph, 'X');
        assert_eq!(e.args, vec![("label".to_owned(), "mix-a".to_owned())]);
    }

    #[test]
    fn ring_bounds_and_drop_count() {
        let t = Tracer::new(4);
        t.set_enabled(true);
        for i in 0..10 {
            t.instant(&format!("e{i}"), "test");
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        // Drops evict the oldest events first — a snapshot is suffix-biased.
        let events = t.events();
        assert_eq!(events.first().unwrap().name, "e6");
        assert_eq!(events.last().unwrap().name, "e9");
    }

    #[test]
    fn drops_surface_in_the_global_registry_export() {
        let before = spans_dropped_total().get();
        let t = Tracer::new(2);
        t.set_enabled(true);
        for i in 0..5 {
            t.instant(&format!("d{i}"), "test");
        }
        // Other tests share the global counter, so assert a lower bound.
        assert!(
            spans_dropped_total().get() >= before + 3,
            "3 evictions recorded"
        );
        let text = Registry::global().prometheus_text();
        assert!(text.contains("sms_obs_spans_dropped_total"), "{text}");
    }

    #[test]
    fn chrome_json_shape() {
        let t = Tracer::new(16);
        t.set_enabled(true);
        {
            let _s = t.span("phase", "sim").arg("k", "v\"q");
        }
        t.instant("tick", "sim");
        let json = t.chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
        assert!(json.contains("\"k\":\"v\\\"q\""), "args escaped: {json}");
        assert!(json.contains("\"dur\":"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn timestamps_are_monotone_per_thread() {
        let t = Tracer::new(64);
        t.set_enabled(true);
        for i in 0..5 {
            t.instant(&format!("m{i}"), "test");
        }
        let ts: Vec<u64> = t.events().iter().map(|e| e.ts_micros).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
    }
}
