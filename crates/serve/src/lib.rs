//! `sms-serve`: a dependency-free prediction service over trained
//! scale-model artifacts.
//!
//! The crate turns the offline pipeline (`sms train --save`) into an
//! online one: a hand-rolled HTTP/1.1 server on `std::net` loads
//! persisted [`sms_core::artifact::ModelArtifact`]s from a
//! [`ModelRegistry`] and answers per-mix IPC/STP predictions without
//! running any simulation. Everything is `std`-only — no async runtime,
//! no HTTP framework — because the workload (small JSON bodies, CPU-light
//! model evaluation) doesn't need one, and the repo's no-new-dependencies
//! rule forbids one.
//!
//! Module map:
//!
//! - [`http`] — minimal HTTP/1.1 request parsing and response writing,
//!   with per-request read deadlines.
//! - [`api`] — request/response DTOs shared by server, CLI, and tests.
//! - [`registry`] — on-disk artifact discovery and in-memory index, with
//!   retrying loads, quarantine, and periodic re-probe self-healing.
//! - [`queue`] — bounded MPMC queue with non-blocking, load-shedding push.
//! - `sync` (private) — std/loom-swappable lock primitives; the loom CI
//!   job model-checks the queue and breaker through this seam.
//! - [`cache`] — LRU response cache keyed on canonical request JSON.
//! - [`breaker`] — per-model circuit breaker gating the analytic
//!   degraded-mode fallback.
//! - [`metrics`] — `sms-obs`-registry-backed counters, histograms, and
//!   latency percentiles for `/metrics` and `/metrics.json`.
//! - [`server`] — acceptor + worker pool wiring, batching, deadlines,
//!   shutdown.
//!
//! Endpoints: `POST /predict`, `GET /models`, `GET /healthz`,
//! `GET /metrics` (Prometheus text exposition), `GET /metrics.json`
//! (JSON snapshot), `POST /shutdown`. See `DESIGN.md` for the batching
//! and load-shedding policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod api;
pub mod breaker;
pub mod cache;
pub mod http;
pub mod metrics;
pub mod queue;
pub mod registry;
pub mod server;
mod sync;

pub use api::{ModelInfo, ModelsResponse, PredictRequest, PredictResponse};
pub use breaker::{BreakerState, CircuitBreaker, Route};
pub use cache::LruCache;
pub use metrics::{MetricsSnapshot, ServerMetrics};
pub use queue::BoundedQueue;
pub use registry::{models_dir, ModelRegistry, RegistryStats};
pub use server::{
    serve, ServerConfig, ServerHandle, ShutdownTrigger, MAX_DEADLINE_MS, MIN_DEADLINE_MS,
};
