//! Minimal HTTP/1.1 request parsing and response writing over any
//! `Read`/`Write` pair.
//!
//! The build environment has no crate-registry access, so the server
//! speaks just enough HTTP/1.1 itself: one request per connection
//! (`Connection: close` semantics), `Content-Length` bodies only, with
//! hard caps on header count and body size so a misbehaving client
//! cannot balloon memory.

use std::io::{BufRead, Read, Write};
use std::time::Instant;

/// Maximum accepted request body, bytes.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Maximum accepted header count.
pub const MAX_HEADERS: usize = 64;

/// Maximum accepted request-line / header-line length, bytes.
pub const MAX_LINE_BYTES: usize = 8 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path, e.g. `/predict`.
    pub path: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Request-parsing failures, each mapped to an HTTP status by the server.
#[derive(Debug)]
pub enum HttpError {
    /// Underlying socket failure (including read timeouts).
    Io(std::io::Error),
    /// The peer closed the connection before sending a request line.
    Closed,
    /// The bytes are not a parseable HTTP/1.1 request.
    Malformed(&'static str),
    /// The declared body exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge(usize),
    /// The request was not fully received before its read deadline (a
    /// slow-loris defense; the server answers `504`).
    DeadlineExceeded,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "socket error: {e}"),
            Self::Closed => write!(f, "connection closed before a request arrived"),
            Self::Malformed(what) => write!(f, "malformed request: {what}"),
            Self::BodyTooLarge(n) => {
                write!(
                    f,
                    "request body of {n} bytes exceeds the {MAX_BODY_BYTES}-byte cap"
                )
            }
            Self::DeadlineExceeded => {
                write!(f, "request was not fully received before its read deadline")
            }
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

fn read_line<R: BufRead>(reader: &mut R) -> Result<String, HttpError> {
    let mut line = String::new();
    // Cap line length by reading through a take() adapter: a single
    // overlong line errors out instead of growing unboundedly.
    let n = reader
        .by_ref()
        .take(MAX_LINE_BYTES as u64)
        .read_line(&mut line)?;
    if n == 0 {
        return Err(HttpError::Closed);
    }
    if !line.ends_with('\n') && n >= MAX_LINE_BYTES {
        return Err(HttpError::Malformed("header line too long"));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Read and parse one HTTP/1.1 request from `reader`.
///
/// # Errors
///
/// [`HttpError`] on socket failure, early close, malformed syntax, or an
/// oversized body.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Request, HttpError> {
    read_request_before(reader, None)
}

/// [`read_request`] with an optional read deadline: the deadline is
/// checked between line reads and before the body read, so a client that
/// trickles headers (slow loris) is cut off with
/// [`HttpError::DeadlineExceeded`] instead of holding the connection for
/// one socket timeout per header line. Each individual blocking read is
/// still bounded by the socket's read timeout, so the worst-case pin is
/// the deadline plus one socket timeout.
///
/// # Errors
///
/// As [`read_request`], plus [`HttpError::DeadlineExceeded`] once
/// `deadline` passes.
pub fn read_request_before<R: BufRead>(
    reader: &mut R,
    deadline: Option<Instant>,
) -> Result<Request, HttpError> {
    let check_deadline = || -> Result<(), HttpError> {
        match deadline {
            Some(d) if Instant::now() > d => Err(HttpError::DeadlineExceeded),
            _ => Ok(()),
        }
    };
    let request_line = read_line(reader)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::Malformed("empty request line"))?
        .to_owned();
    let path = parts
        .next()
        .ok_or(HttpError::Malformed("request line lacks a path"))?
        .to_owned();
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("request line lacks an HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported protocol version"));
    }

    let mut headers = Vec::new();
    let mut content_length: usize = 0;
    loop {
        check_deadline()?;
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::Malformed("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header lacks a colon"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_owned();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| HttpError::Malformed("unparseable content-length"))?;
        }
        headers.push((name, value));
    }

    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge(content_length));
    }
    check_deadline()?;
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code, e.g. 200.
    pub status: u16,
    /// Value of the `Content-Type` header.
    pub content_type: String,
    /// Extra headers beyond the always-emitted `Content-Type`,
    /// `Content-Length`, and `Connection: close`.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json".to_owned(),
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response with the given status and content type
    /// (e.g. the Prometheus exposition format for `/metrics`).
    pub fn text(status: u16, content_type: &str, body: String) -> Self {
        Self {
            status,
            content_type: content_type.to_owned(),
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A JSON error response shaped `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Self {
        let body = serde_json::json!({ "error": message });
        Self::json(status, body.to_string())
    }

    /// Append a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Serialize the response to `writer` with `Connection: close`
    /// semantics (the server handles one request per connection).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        writer.write_all(head.as_bytes())?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

/// Canonical reason phrase for the status codes the server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_content_length_body() {
        let req = parse(
            b"POST /predict HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"a\":1}");
    }

    #[test]
    fn rejects_oversized_bodies_and_garbage() {
        let huge = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse(huge.as_bytes()),
            Err(HttpError::BodyTooLarge(_))
        ));
        assert!(matches!(parse(b""), Err(HttpError::Closed)));
        assert!(matches!(
            parse(b"NOT-HTTP\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nbroken header line\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_missing_or_garbage_http_version() {
        // No version token at all: previously this silently defaulted to
        // HTTP/1.1; now it is a 400-mapped parse error.
        assert!(matches!(
            parse(b"GET /healthz\r\n\r\n"),
            Err(HttpError::Malformed("request line lacks an HTTP version"))
        ));
        // A garbage version token is rejected too.
        assert!(matches!(
            parse(b"GET /healthz FTP/9000\r\n\r\n"),
            Err(HttpError::Malformed("unsupported protocol version"))
        ));
        // HTTP/1.0 and HTTP/1.1 both still parse.
        assert!(parse(b"GET / HTTP/1.0\r\n\r\n").is_ok());
        assert!(parse(b"GET / HTTP/1.1\r\n\r\n").is_ok());
    }

    #[test]
    fn header_read_deadline_cuts_off_slow_clients() {
        // A deadline already in the past trips between the request line
        // and the first header line.
        let past = Instant::now() - std::time::Duration::from_millis(10);
        let bytes: &[u8] = b"GET / HTTP/1.1\r\nHost: x\r\n\r\n";
        assert!(matches!(
            read_request_before(&mut BufReader::new(bytes), Some(past)),
            Err(HttpError::DeadlineExceeded)
        ));
        // A generous deadline lets the same request through.
        let future = Instant::now() + std::time::Duration::from_secs(60);
        let req = read_request_before(&mut BufReader::new(bytes), Some(future)).unwrap();
        assert_eq!(req.path, "/");
        // 504 has a proper reason phrase for the deadline responses.
        assert_eq!(reason_phrase(504), "Gateway Timeout");
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::json(200, "{}".to_owned())
            .with_header("x-cache", "hit")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("x-cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn retry_after_status_line() {
        let mut out = Vec::new();
        Response::error(503, "queue full")
            .with_header("retry-after", "1")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("queue full"));
    }
}
