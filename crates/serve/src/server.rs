//! The threaded prediction server.
//!
//! Architecture: one acceptor thread polls a non-blocking
//! `std::net::TcpListener` (so it can watch the shutdown flag), hands
//! each accepted connection to a short-lived connection thread — bounded
//! by [`ServerConfig::max_inflight`]; beyond the bound connections are
//! shed inline with `503` — and periodically asks the model registry to
//! re-probe quarantined artifacts. Connection threads parse the request
//! under a short header-read deadline (slow-loris defense) and answer
//! cheap endpoints (`/healthz`, `/models`, `/metrics`, `/metrics.json`,
//! `/shutdown`) and cache hits directly; `POST /predict` cache misses
//! are enqueued on a [`BoundedQueue`] and answered by a fixed worker
//! pool. When the queue is full the request is shed immediately with
//! `503` + `Retry-After` — bounded latency is preferred over unbounded
//! queueing. Workers micro-batch: after dequeuing a job they drain other
//! queued jobs for the same model and answer the whole batch in one pass
//! (one artifact lookup, one simulated-latency charge).
//!
//! Every request carries a deadline (default from
//! [`ServerConfig::request_timeout_ms`], overridable per request via the
//! `x-sms-deadline-ms` header, clamped to
//! [`MIN_DEADLINE_MS`]..=[`MAX_DEADLINE_MS`]) that is checked at queue
//! exit and after prediction; expired requests are answered `504` and
//! counted in `sms_serve_deadline_exceeded_total{stage}`.
//!
//! Prediction failures and timeouts feed a per-model
//! [`CircuitBreaker`]: after enough consecutive failures the model's
//! requests are served by the artifact's cheap analytic estimate
//! (`"degraded": true`, `x-sms-degraded: 1`) until a half-open trial
//! succeeds. See `crate::breaker` and DESIGN.md for the state machine.
//!
//! Shutdown is cooperative via an [`AtomicBool`]: `POST /shutdown` (or
//! [`ServerHandle::begin_shutdown`] / a [`ShutdownTrigger`] wired to
//! ctrl-c handling in the CLI) flips the flag; the acceptor stops
//! accepting, workers drain the queue, and [`ServerHandle::join`]
//! returns. Pure-`std` builds cannot install OS signal handlers, so the
//! process-level ctrl-c path is the CLI's stdin watcher plus the
//! `/shutdown` endpoint (see DESIGN.md).

use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::sync::Mutex;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use sms_core::artifact::{to_canonical_json, ModelArtifact};

use crate::api::{ModelsResponse, PredictRequest, PredictResponse};
use crate::breaker::{CircuitBreaker, Route};
use crate::cache::LruCache;
use crate::http::{read_request_before, HttpError, Request, Response};
use crate::metrics::ServerMetrics;
use crate::queue::{lock, BoundedQueue};
use crate::registry::ModelRegistry;

/// Smallest honored per-request deadline, milliseconds.
pub const MIN_DEADLINE_MS: u64 = 10;

/// Largest honored per-request deadline, milliseconds.
pub const MAX_DEADLINE_MS: u64 = 60_000;

/// First backoff after a failed `accept()`; doubles up to
/// [`ACCEPT_BACKOFF_MAX`] and resets on the next successful accept.
const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(10);

/// Backoff ceiling for persistent `accept()` failures.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_secs(1);

/// Server tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (`:0` for an ephemeral port).
    pub addr: String,
    /// Prediction worker threads (minimum 1).
    pub workers: usize,
    /// Bounded prediction-queue capacity; beyond it requests are shed.
    pub queue_capacity: usize,
    /// LRU response-cache capacity, entries.
    pub cache_capacity: usize,
    /// Maximum predict requests coalesced into one worker batch.
    pub batch_max: usize,
    /// Cap on the per-request `delay_ms` load-testing knob, milliseconds.
    pub max_delay_ms: u64,
    /// Default end-to-end request deadline, milliseconds; also derives
    /// the socket read/write timeouts and the header-read deadline.
    pub request_timeout_ms: u64,
    /// Maximum concurrently handled connections; beyond it new
    /// connections are shed with `503`.
    pub max_inflight: usize,
    /// Consecutive prediction failures that open a model's breaker.
    pub breaker_threshold: u32,
    /// Requests served while a breaker is open before it half-opens.
    pub breaker_window: u32,
    /// How often the acceptor asks the registry to re-probe quarantined
    /// and pending artifacts, milliseconds.
    pub reprobe_interval_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8080".to_owned(),
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 256,
            batch_max: 8,
            max_delay_ms: 2_000,
            request_timeout_ms: 5_000,
            max_inflight: 256,
            breaker_threshold: 3,
            breaker_window: 8,
            reprobe_interval_ms: 250,
        }
    }
}

impl ServerConfig {
    /// Socket read/write timeout, derived from the request timeout so a
    /// single blocking socket operation can never outlive the request
    /// budget by more than one timeout.
    fn socket_timeout(&self) -> Duration {
        Duration::from_millis(self.request_timeout_ms.clamp(MIN_DEADLINE_MS, 600_000))
    }

    /// Header-read deadline: the full request must arrive within this
    /// budget (slow-loris defense). Short even when the request timeout
    /// is generous — reading headers is never the slow part.
    fn header_deadline(&self) -> Duration {
        Duration::from_millis(self.request_timeout_ms.clamp(MIN_DEADLINE_MS, 2_000))
    }

    /// The deadline applied to requests that do not send
    /// `x-sms-deadline-ms`, clamped like the header itself.
    fn default_deadline_ms(&self) -> u64 {
        self.request_timeout_ms
            .clamp(MIN_DEADLINE_MS, MAX_DEADLINE_MS)
    }
}

/// One queued prediction: the parsed request plus the connection to
/// answer on.
struct Job {
    stream: TcpStream,
    request: PredictRequest,
    key: String,
    received: Instant,
    /// Absolute deadline; once passed the job is answered `504`.
    deadline: Instant,
}

struct Shared {
    registry: ModelRegistry,
    queue: BoundedQueue<Job>,
    cache: Mutex<LruCache>,
    metrics: ServerMetrics,
    shutdown: AtomicBool,
    breakers: Mutex<BTreeMap<String, CircuitBreaker>>,
    inflight: AtomicUsize,
    config: ServerConfig,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake blocked workers so they observe the flag immediately.
        self.queue.notify_all();
    }

    /// Route a predict job through the model's breaker, creating the
    /// breaker on first use.
    fn breaker_route(&self, model: &str) -> Route {
        let transition;
        let route;
        {
            let mut breakers = lock(&self.breakers);
            let breaker = breakers.entry(model.to_owned()).or_insert_with(|| {
                CircuitBreaker::new(self.config.breaker_threshold, self.config.breaker_window)
            });
            (route, transition) = breaker.route();
        }
        if let Some(state) = transition {
            self.note_breaker_transition(model, state.as_label());
        }
        route
    }

    /// Report a primary/trial outcome to the model's breaker.
    fn breaker_report(&self, model: &str, ok: bool) {
        let transition = {
            let mut breakers = lock(&self.breakers);
            breakers
                .get_mut(model)
                .and_then(|b| if ok { b.on_success() } else { b.on_failure() })
        };
        if let Some(state) = transition {
            self.note_breaker_transition(model, state.as_label());
        }
    }

    fn note_breaker_transition(&self, model: &str, to: &str) {
        self.metrics.record_breaker_transition(to);
        eprintln!("sms-serve: model {model:?} circuit breaker -> {to}");
    }
}

/// A cloneable handle that triggers graceful shutdown, for wiring into
/// CLI stdin watchers or other out-of-band stop signals.
#[derive(Clone)]
pub struct ShutdownTrigger {
    shared: Arc<Shared>,
}

impl ShutdownTrigger {
    /// Request graceful shutdown: stop accepting, drain the queue, exit.
    pub fn trigger(&self) {
        self.shared.begin_shutdown();
    }
}

impl std::fmt::Debug for ShutdownTrigger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShutdownTrigger").finish()
    }
}

/// A running server: its bound address and the threads to join.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("threads", &self.threads.len())
            .finish()
    }
}

impl ServerHandle {
    /// The actually-bound socket address (resolves `:0` requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live metrics collectors (shared with the serving threads).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.shared.metrics
    }

    /// Number of models the server is answering for.
    pub fn model_count(&self) -> usize {
        self.shared.registry.len()
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// A cloneable out-of-band shutdown trigger.
    pub fn shutdown_trigger(&self) -> ShutdownTrigger {
        ShutdownTrigger {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Request graceful shutdown without waiting for it to finish.
    pub fn begin_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Block until every serving thread has exited. Returns only after a
    /// shutdown request (from [`ServerHandle::begin_shutdown`], a
    /// [`ShutdownTrigger`], or `POST /shutdown`) has been observed and
    /// the queue drained.
    pub fn join(self) {
        for t in self.threads {
            // sms-lint: allow(C3): bounded — workers re-check the shutdown
            let _ = t.join(); // flag every pop_timeout tick, so exit is prompt
        }
    }

    /// [`ServerHandle::begin_shutdown`] then [`ServerHandle::join`].
    pub fn shutdown_and_join(self) {
        self.begin_shutdown();
        // sms-lint: allow(C3): delegates to the bounded join() above
        self.join();
    }
}

/// Bind, spawn the acceptor and worker pool, and return immediately.
///
/// # Errors
///
/// Propagates bind/spawn failures.
pub fn serve(registry: ModelRegistry, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let workers = config.workers.max(1);
    let shared = Arc::new(Shared {
        registry,
        queue: BoundedQueue::new(config.queue_capacity),
        cache: Mutex::new(LruCache::new(config.cache_capacity)),
        metrics: ServerMetrics::new(),
        shutdown: AtomicBool::new(false),
        breakers: Mutex::new(BTreeMap::new()),
        inflight: AtomicUsize::new(0),
        config,
    });

    let mut threads = Vec::with_capacity(workers + 1);
    for i in 0..workers {
        let shared = Arc::clone(&shared);
        threads.push(
            thread::Builder::new()
                .name(format!("sms-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))?,
        );
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(
            thread::Builder::new()
                .name("sms-serve-acceptor".to_owned())
                .spawn(move || acceptor_loop(&listener, &shared))?,
        );
    }

    Ok(ServerHandle {
        addr,
        shared,
        threads,
    })
}

fn acceptor_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let reprobe_interval = Duration::from_millis(shared.config.reprobe_interval_ms.max(10));
    let mut error_backoff = ACCEPT_BACKOFF_MIN;
    while !shared.shutdown.load(Ordering::SeqCst) {
        // Registry self-healing rides on the accept loop: quarantined and
        // transiently-failed artifacts get periodic re-probes, and their
        // totals are mirrored into the exported counters.
        if shared.registry.maybe_reprobe(reprobe_interval) {
            let stats = shared.registry.stats();
            shared
                .metrics
                .sync_artifact_health(stats.quarantined_total, stats.absolved_total);
        }
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                error_backoff = ACCEPT_BACKOFF_MIN;
                // `serve.accept` failpoint: an injected error refuses the
                // connection politely (the client still gets a response)
                // and counts like a real accept-path failure.
                if let Err(e) = sms_faults::check("serve.accept") {
                    note_accept_error(shared, &e.to_string());
                    tune_stream(&stream, &shared.config);
                    respond(
                        shared,
                        &mut stream,
                        &Response::error(503, &e.to_string()).with_header("retry-after", "1"),
                    );
                    lingering_close(stream);
                    continue;
                }
                dispatch_connection(shared, stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(e) => {
                // Real accept() failures (fd exhaustion, interface down)
                // back off exponentially so a persistent fault cannot
                // spin the acceptor, and reset on the next success.
                note_accept_error(shared, &e.to_string());
                thread::sleep(error_backoff);
                error_backoff = (error_backoff * 2).min(ACCEPT_BACKOFF_MAX);
            }
        }
    }
}

/// Count one accept-path failure, warning once so a flood stays
/// observable without flooding stderr.
fn note_accept_error(shared: &Shared, detail: &str) {
    shared.metrics.record_accept_error();
    if shared.metrics.accept_errors() == 1 {
        eprintln!(
            "sms-serve: accept failed ({detail}); further failures are \
             counted in sms_serve_accept_errors_total"
        );
    }
}

/// Decrements the in-flight gauge when a connection finishes, however
/// its thread exits.
struct InflightGuard {
    shared: Arc<Shared>,
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        let now = self.shared.inflight.fetch_sub(1, Ordering::SeqCst) - 1;
        self.shared.metrics.set_inflight(now);
    }
}

/// Hand an accepted connection to a short-lived handler thread, shedding
/// inline with `503` when [`ServerConfig::max_inflight`] is reached — a
/// slow client can pin at most one connection thread, never the
/// acceptor.
fn dispatch_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let inflight = shared.inflight.fetch_add(1, Ordering::SeqCst) + 1;
    shared.metrics.set_inflight(inflight);
    let guard = InflightGuard {
        shared: Arc::clone(shared),
    };
    if inflight > shared.config.max_inflight.max(1) {
        shared.metrics.record_shed();
        tune_stream(&stream, &shared.config);
        respond(
            shared,
            &mut stream,
            &Response::error(503, "too many connections; retry shortly")
                .with_header("retry-after", "1"),
        );
        lingering_close(stream);
        drop(guard);
        return;
    }
    let shared_for_conn = Arc::clone(shared);
    let spawned = thread::Builder::new()
        .name("sms-serve-conn".to_owned())
        .spawn(move || {
            let _guard = guard;
            handle_connection(&shared_for_conn, stream);
        });
    if let Err(e) = spawned {
        // Thread exhaustion: the closure (connection and guard included)
        // was dropped, so the client sees a reset; count it like an
        // accept failure so it is observable.
        note_accept_error(shared, &format!("spawn failed: {e}"));
    }
}

/// Write a response back to the client. Failures (typically a client
/// that hung up before reading its answer) are counted in
/// `sms_serve_write_errors_total` and logged once, so a flood of
/// half-closed connections stays observable without flooding stderr.
/// Lingering close for refusals sent before the request was read
/// (accept-failpoint and inflight-shed paths). Closing with unread
/// bytes in the receive buffer makes the kernel send RST, which can
/// destroy the refusal in flight; instead send FIN and drain what the
/// client was sending (bounded) so the response is delivered intact.
fn lingering_close(mut stream: TcpStream) {
    use std::io::Read;
    let _ = stream.shutdown(std::net::Shutdown::Write); // sms-lint: allow(E2): best-effort close path
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250))); // sms-lint: allow(E2): best-effort close path
    let mut sink = [0u8; 4096];
    for _ in 0..16 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

fn respond(shared: &Shared, stream: &mut TcpStream, response: &Response) {
    if let Err(e) = response.write_to(stream) {
        shared.metrics.record_write_error();
        if shared.metrics.write_errors() == 1 {
            eprintln!(
                "sms-serve: failed to write a response ({e}); further failures \
                 are counted in sms_serve_write_errors_total"
            );
        }
    }
}

/// Best-effort socket tuning: accepted sockets may inherit the
/// listener's non-blocking mode on some platforms, and the read/write
/// timeouts derive from the configured request timeout so one blocking
/// socket operation cannot outlive the request budget by more than one
/// timeout. A socket that rejects the knobs still serves requests
/// correctly.
fn tune_stream(stream: &TcpStream, config: &ServerConfig) {
    let timeout = config.socket_timeout();
    let _ = stream.set_nonblocking(false); // sms-lint: allow(E2): best-effort socket tuning
    let _ = stream.set_read_timeout(Some(timeout)); // sms-lint: allow(E2): best-effort socket tuning
    let _ = stream.set_write_timeout(Some(timeout)); // sms-lint: allow(E2): best-effort socket tuning
    let _ = stream.set_nodelay(true); // sms-lint: allow(E2): best-effort socket tuning
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let accepted = Instant::now();
    tune_stream(&stream, &shared.config);

    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let header_deadline = accepted + shared.config.header_deadline();
    let request = match read_request_before(&mut reader, Some(header_deadline)) {
        Ok(r) => r,
        Err(HttpError::Closed) => return,
        Err(HttpError::DeadlineExceeded) => {
            shared.metrics.record_deadline_exceeded("header");
            respond(
                shared,
                &mut stream,
                &Response::error(504, "request was not received before its read deadline")
                    .with_header("x-sms-deadline-stage", "header"),
            );
            return;
        }
        Err(HttpError::BodyTooLarge(_)) => {
            shared.metrics.record_bad_request();
            respond(
                shared,
                &mut stream,
                &Response::error(413, "request body too large"),
            );
            return;
        }
        Err(HttpError::Malformed(what)) => {
            shared.metrics.record_bad_request();
            respond(shared, &mut stream, &Response::error(400, what));
            return;
        }
        Err(HttpError::Io(_)) => return,
    };
    drop(reader);

    shared.metrics.record_request();
    // `serve.route` failpoint: an injected fault between parse and
    // dispatch answers 503 (retryable) instead of hanging the client.
    if let Err(e) = sms_faults::check("serve.route") {
        respond(
            shared,
            &mut stream,
            &Response::error(503, &e.to_string()).with_header("retry-after", "1"),
        );
        return;
    }
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            shared.metrics.record_healthz();
            let body = serde_json::json!({
                "models": shared.registry.len(),
                "status": if shared.shutdown.load(Ordering::SeqCst) { "shutting-down" } else { "ok" },
            });
            respond(shared, &mut stream, &Response::json(200, body.to_string()));
        }
        ("GET", "/models") => {
            shared.metrics.record_models();
            let response = ModelsResponse {
                models: shared.registry.infos(),
            };
            match to_canonical_json(&response) {
                Ok(body) => respond(shared, &mut stream, &Response::json(200, body)),
                Err(_) => respond(
                    shared,
                    &mut stream,
                    &Response::error(500, "encoding failed"),
                ),
            }
        }
        ("GET", "/metrics") => {
            shared.metrics.record_metrics();
            let stats = shared.registry.stats();
            shared
                .metrics
                .sync_artifact_health(stats.quarantined_total, stats.absolved_total);
            let body = shared.metrics.prometheus_text(shared.queue.len());
            respond(
                shared,
                &mut stream,
                &Response::text(200, "text/plain; version=0.0.4", body),
            );
        }
        ("GET", "/metrics.json") => {
            shared.metrics.record_metrics();
            let stats = shared.registry.stats();
            shared
                .metrics
                .sync_artifact_health(stats.quarantined_total, stats.absolved_total);
            let snapshot = shared.metrics.snapshot(shared.queue.len());
            match to_canonical_json(&snapshot) {
                Ok(body) => respond(shared, &mut stream, &Response::json(200, body)),
                Err(_) => respond(
                    shared,
                    &mut stream,
                    &Response::error(500, "encoding failed"),
                ),
            }
        }
        ("POST", "/shutdown") => {
            // Answer before flipping the flag: the process may exit as
            // soon as the serving threads observe shutdown, and the
            // client deserves its acknowledgement first.
            respond(
                shared,
                &mut stream,
                &Response::json(200, r#"{"status":"shutting-down"}"#.to_owned()),
            );
            shared.begin_shutdown();
        }
        ("POST", "/predict") => handle_predict(shared, stream, &request, accepted),
        (_, "/healthz" | "/models" | "/metrics" | "/metrics.json" | "/shutdown" | "/predict") => {
            shared.metrics.record_bad_request();
            respond(
                shared,
                &mut stream,
                &Response::error(405, "method not allowed"),
            );
        }
        _ => {
            shared.metrics.record_bad_request();
            respond(
                shared,
                &mut stream,
                &Response::error(404, "no such endpoint"),
            );
        }
    }
}

fn handle_predict(
    shared: &Arc<Shared>,
    mut stream: TcpStream,
    request: &Request,
    accepted: Instant,
) {
    shared.metrics.record_predict();
    let deadline_ms = match request.header("x-sms-deadline-ms") {
        None => shared.config.default_deadline_ms(),
        Some(raw) => match raw.trim().parse::<u64>() {
            Ok(ms) => ms.clamp(MIN_DEADLINE_MS, MAX_DEADLINE_MS),
            Err(_) => {
                shared.metrics.record_bad_request();
                respond(
                    shared,
                    &mut stream,
                    &Response::error(400, "unparseable x-sms-deadline-ms header"),
                );
                return;
            }
        },
    };
    let deadline = accepted + Duration::from_millis(deadline_ms);

    let predict: PredictRequest = match serde_json::from_slice(&request.body) {
        Ok(p) => p,
        Err(e) => {
            shared.metrics.record_bad_request();
            respond(
                shared,
                &mut stream,
                &Response::error(400, &format!("invalid predict body: {e}")),
            );
            return;
        }
    };

    // Validate eagerly on the connection thread so bad requests never
    // occupy queue slots, and so worker-side prediction cannot fail for
    // request-shaped reasons.
    let Some(artifact) = shared.registry.get(&predict.model) else {
        shared.metrics.record_bad_request();
        respond(
            shared,
            &mut stream,
            &Response::error(404, &format!("unknown model {:?}", predict.model)),
        );
        return;
    };
    if predict.mix.is_empty() {
        shared.metrics.record_bad_request();
        respond(shared, &mut stream, &Response::error(400, "empty mix"));
        return;
    }
    if let Some(unknown) = predict
        .mix
        .iter()
        .find(|name| !artifact.payload.ss_table.contains_key(*name))
    {
        shared.metrics.record_bad_request();
        respond(
            shared,
            &mut stream,
            &Response::error(
                400,
                &format!("benchmark {unknown:?} is not in model {:?}", predict.model),
            ),
        );
        return;
    }
    if let Some(cores) = predict.target_cores {
        if cores == 0 || cores > 4096 {
            shared.metrics.record_bad_request();
            respond(
                shared,
                &mut stream,
                &Response::error(400, &format!("target_cores {cores} out of range")),
            );
            return;
        }
    }

    let key = predict.cache_key();
    let cached = lock(&shared.cache).get(&key);
    if let Some(body) = cached {
        shared.metrics.record_cache_hit();
        respond(
            shared,
            &mut stream,
            &Response::json(200, body).with_header("x-cache", "hit"),
        );
        return;
    }

    if Instant::now() > deadline {
        shared.metrics.record_deadline_exceeded("queue");
        respond(shared, &mut stream, &deadline_response("queue"));
        return;
    }
    let job = Job {
        stream,
        request: predict,
        key,
        received: Instant::now(),
        deadline,
    };
    match shared.queue.try_push(job) {
        Ok(_depth) => shared.metrics.record_cache_miss(),
        Err(job) => {
            // Load shedding: the queue hands the job (and its connection)
            // back so the refusal can be written on it.
            shared.metrics.record_shed();
            let mut stream = job.stream;
            respond(
                shared,
                &mut stream,
                &Response::error(503, "prediction queue is full; retry shortly")
                    .with_header("retry-after", "1"),
            );
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        match shared.queue.pop_timeout(Duration::from_millis(50)) {
            Some(job) => {
                let model = job.request.model.clone();
                let mut batch = vec![job];
                let extra = shared.queue.drain_matching(
                    |j| j.request.model == model,
                    shared.config.batch_max.saturating_sub(1),
                );
                shared.metrics.record_batched(extra.len() as u64);
                batch.extend(extra);
                // Panic isolation: a panicking batch (poisoned artifact,
                // injected fault) must not take the worker thread down —
                // its connections are dropped, the panic counted, and the
                // worker moves on to the next batch.
                let shielded = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    process_batch(shared, batch);
                }));
                if shielded.is_err() {
                    shared.metrics.record_worker_panic();
                    eprintln!(
                        "sms-serve: worker batch panicked; dropping the batch's \
                         connections and continuing"
                    );
                }
            }
            None => {
                if shared.shutdown.load(Ordering::SeqCst) && shared.queue.is_empty() {
                    break;
                }
            }
        }
    }
}

/// The `504` answered when `stage`'s deadline expired.
fn deadline_response(stage: &str) -> Response {
    Response::error(504, "deadline expired before the prediction completed")
        .with_header("x-sms-deadline-stage", stage)
}

fn process_batch(shared: &Arc<Shared>, batch: Vec<Job>) {
    // `serve.worker` failpoint: an injected error fails the whole batch
    // with 500s (clients see a typed error, the worker survives); an
    // injected panic exercises the `catch_unwind` shield in `worker_loop`.
    if let Err(e) = sms_faults::check("serve.worker") {
        for job in batch {
            let mut stream = job.stream;
            respond(shared, &mut stream, &Response::error(500, &e.to_string()));
        }
        return;
    }
    let model = batch[0].request.model.clone();
    let artifact = shared.registry.get(&model);
    // Jobs whose deadline expired while queued are answered 504 before
    // the batch charges its latency; they never touch the breaker.
    let (batch, expired): (Vec<Job>, Vec<Job>) = batch
        .into_iter()
        .partition(|j| Instant::now() <= j.deadline);
    for job in expired {
        shared.metrics.record_deadline_exceeded("queue");
        finish_job(shared, job, deadline_response("queue"));
    }
    if batch.is_empty() {
        return;
    }
    // The load-testing latency knob is charged once per batch (the
    // batching win: coalesced requests share the "model latency"), using
    // the batch's largest requested delay, capped by the server.
    let delay_ms = batch
        .iter()
        .filter_map(|j| j.request.delay_ms)
        .max()
        .unwrap_or(0)
        .min(shared.config.max_delay_ms);
    if delay_ms > 0 {
        thread::sleep(Duration::from_millis(delay_ms));
    }
    for job in batch {
        let Some(artifact) = artifact.as_deref() else {
            finish_job(
                shared,
                job,
                Response::error(404, "model vanished from the registry"),
            );
            continue;
        };
        let response = match shared.breaker_route(&model) {
            Route::Primary | Route::Trial => {
                // `serve.predict` failpoint: injected errors count as
                // prediction failures — they feed the breaker and the
                // client gets the analytic fallback, not a hang.
                match sms_faults::check("serve.predict") {
                    Err(_) => {
                        shared.breaker_report(&model, false);
                        degraded_response(shared, artifact, &job)
                    }
                    Ok(()) => {
                        match artifact.predict_mix(&job.request.mix, job.request.target_cores) {
                            Ok(prediction) => {
                                if Instant::now() > job.deadline {
                                    // A timeout is a failure from the
                                    // breaker's point of view.
                                    shared.breaker_report(&model, false);
                                    shared.metrics.record_deadline_exceeded("predict");
                                    deadline_response("predict")
                                } else {
                                    shared.breaker_report(&model, true);
                                    let body = PredictResponse {
                                        model: job.request.model.clone(),
                                        degraded: false,
                                        prediction,
                                    };
                                    match to_canonical_json(&body) {
                                        Ok(text) => {
                                            lock(&shared.cache).put(job.key.clone(), text.clone());
                                            Response::json(200, text).with_header("x-cache", "miss")
                                        }
                                        Err(_) => Response::error(500, "encoding failed"),
                                    }
                                }
                            }
                            // Request-shaped failure: the client's fault, not
                            // the model's — no breaker effect.
                            Err(e) => Response::error(400, &e.to_string()),
                        }
                    }
                }
            }
            Route::Fallback => degraded_response(shared, artifact, &job),
        };
        finish_job(shared, job, response);
    }
}

/// Serve the analytic fallback for a job whose primary prediction is
/// unavailable (breaker open, or a just-failed attempt). Degraded bodies
/// are marked `"degraded": true` + `x-sms-degraded: 1` and are never
/// cached, so post-recovery responses are bit-identical to a fault-free
/// server's. Only when even the fallback fails is the request shed with
/// `503`.
fn degraded_response(shared: &Shared, artifact: &ModelArtifact, job: &Job) -> Response {
    match artifact.analytic_mix_estimate(&job.request.mix, job.request.target_cores) {
        Ok(prediction) => {
            if Instant::now() > job.deadline {
                shared.metrics.record_deadline_exceeded("predict");
                return deadline_response("predict");
            }
            shared.metrics.record_degraded();
            let body = PredictResponse {
                model: job.request.model.clone(),
                degraded: true,
                prediction,
            };
            match to_canonical_json(&body) {
                Ok(text) => Response::json(200, text).with_header("x-sms-degraded", "1"),
                Err(_) => Response::error(500, "encoding failed"),
            }
        }
        Err(e) => Response::error(
            503,
            &format!("prediction temporarily unavailable ({e}); retry shortly"),
        )
        .with_header("retry-after", "1"),
    }
}

/// Record a worker-answered job's wall latency and write its response.
fn finish_job(shared: &Shared, job: Job, response: Response) {
    shared
        .metrics
        .record_latency(job.received.elapsed().as_secs_f64());
    let mut stream = job.stream;
    respond(shared, &mut stream, &response);
}
