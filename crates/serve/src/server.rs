//! The threaded prediction server.
//!
//! Architecture: one acceptor thread handles connections from a
//! `std::net::TcpListener` (non-blocking accept so it can poll the
//! shutdown flag). Cheap endpoints (`/healthz`, `/models`, `/metrics`
//! in Prometheus text, `/metrics.json`, `/shutdown`) and cache hits are
//! answered inline on the acceptor;
//! `POST /predict` cache misses are enqueued on a [`BoundedQueue`] and
//! answered by a fixed worker pool. When the queue is full the request
//! is shed immediately with `503` + `Retry-After` — bounded latency is
//! preferred over unbounded queueing. Workers micro-batch: after
//! dequeuing a job they drain other queued jobs for the same model and
//! answer the whole batch in one pass (one artifact lookup, one
//! simulated-latency charge).
//!
//! Shutdown is cooperative via an [`AtomicBool`]: `POST /shutdown` (or
//! [`ServerHandle::begin_shutdown`] / a [`ShutdownTrigger`] wired to
//! ctrl-c handling in the CLI) flips the flag; the acceptor stops
//! accepting, workers drain the queue, and [`ServerHandle::join`]
//! returns. Pure-`std` builds cannot install OS signal handlers, so the
//! process-level ctrl-c path is the CLI's stdin watcher plus the
//! `/shutdown` endpoint (see DESIGN.md).

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use sms_core::artifact::to_canonical_json;

use crate::api::{ModelsResponse, PredictRequest, PredictResponse};
use crate::cache::LruCache;
use crate::http::{read_request, HttpError, Request, Response};
use crate::metrics::ServerMetrics;
use crate::queue::{lock, BoundedQueue};
use crate::registry::ModelRegistry;

/// Server tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (`:0` for an ephemeral port).
    pub addr: String,
    /// Prediction worker threads (minimum 1).
    pub workers: usize,
    /// Bounded prediction-queue capacity; beyond it requests are shed.
    pub queue_capacity: usize,
    /// LRU response-cache capacity, entries.
    pub cache_capacity: usize,
    /// Maximum predict requests coalesced into one worker batch.
    pub batch_max: usize,
    /// Cap on the per-request `delay_ms` load-testing knob, milliseconds.
    pub max_delay_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8080".to_owned(),
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 256,
            batch_max: 8,
            max_delay_ms: 2_000,
        }
    }
}

/// One queued prediction: the parsed request plus the connection to
/// answer on.
struct Job {
    stream: TcpStream,
    request: PredictRequest,
    key: String,
    received: Instant,
}

struct Shared {
    registry: ModelRegistry,
    queue: BoundedQueue<Job>,
    cache: Mutex<LruCache>,
    metrics: ServerMetrics,
    shutdown: AtomicBool,
    config: ServerConfig,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake blocked workers so they observe the flag immediately.
        self.queue.notify_all();
    }
}

/// A cloneable handle that triggers graceful shutdown, for wiring into
/// CLI stdin watchers or other out-of-band stop signals.
#[derive(Clone)]
pub struct ShutdownTrigger {
    shared: Arc<Shared>,
}

impl ShutdownTrigger {
    /// Request graceful shutdown: stop accepting, drain the queue, exit.
    pub fn trigger(&self) {
        self.shared.begin_shutdown();
    }
}

impl std::fmt::Debug for ShutdownTrigger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShutdownTrigger").finish()
    }
}

/// A running server: its bound address and the threads to join.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("threads", &self.threads.len())
            .finish()
    }
}

impl ServerHandle {
    /// The actually-bound socket address (resolves `:0` requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live metrics collectors (shared with the serving threads).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.shared.metrics
    }

    /// Number of models the server is answering for.
    pub fn model_count(&self) -> usize {
        self.shared.registry.len()
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// A cloneable out-of-band shutdown trigger.
    pub fn shutdown_trigger(&self) -> ShutdownTrigger {
        ShutdownTrigger {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Request graceful shutdown without waiting for it to finish.
    pub fn begin_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Block until every serving thread has exited. Returns only after a
    /// shutdown request (from [`ServerHandle::begin_shutdown`], a
    /// [`ShutdownTrigger`], or `POST /shutdown`) has been observed and
    /// the queue drained.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// [`ServerHandle::begin_shutdown`] then [`ServerHandle::join`].
    pub fn shutdown_and_join(self) {
        self.begin_shutdown();
        self.join();
    }
}

/// Bind, spawn the acceptor and worker pool, and return immediately.
///
/// # Errors
///
/// Propagates bind/spawn failures.
pub fn serve(registry: ModelRegistry, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let workers = config.workers.max(1);
    let shared = Arc::new(Shared {
        registry,
        queue: BoundedQueue::new(config.queue_capacity),
        cache: Mutex::new(LruCache::new(config.cache_capacity)),
        metrics: ServerMetrics::new(),
        shutdown: AtomicBool::new(false),
        config,
    });

    let mut threads = Vec::with_capacity(workers + 1);
    for i in 0..workers {
        let shared = Arc::clone(&shared);
        threads.push(
            thread::Builder::new()
                .name(format!("sms-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))?,
        );
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(
            thread::Builder::new()
                .name("sms-serve-acceptor".to_owned())
                .spawn(move || acceptor_loop(&listener, &shared))?,
        );
    }

    Ok(ServerHandle {
        addr,
        shared,
        threads,
    })
}

fn acceptor_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => handle_connection(shared, stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Write a response back to the client. Failures (typically a client
/// that hung up before reading its answer) are counted in
/// `sms_serve_write_errors_total` and logged once, so a flood of
/// half-closed connections stays observable without flooding stderr.
fn respond(shared: &Shared, stream: &mut TcpStream, response: &Response) {
    if let Err(e) = response.write_to(stream) {
        shared.metrics.record_write_error();
        if shared.metrics.write_errors() == 1 {
            eprintln!(
                "sms-serve: failed to write a response ({e}); further failures \
                 are counted in sms_serve_write_errors_total"
            );
        }
    }
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    // Accepted sockets may inherit the listener's non-blocking mode on
    // some platforms; request handling is blocking with short timeouts.
    // The four socket knobs below are best-effort tuning: a socket that
    // rejects them still serves requests correctly.
    let _ = stream.set_nonblocking(false); // sms-lint: allow(E2): best-effort socket tuning
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5))); // sms-lint: allow(E2): best-effort socket tuning
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5))); // sms-lint: allow(E2): best-effort socket tuning
    let _ = stream.set_nodelay(true); // sms-lint: allow(E2): best-effort socket tuning

    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let request = match read_request(&mut reader) {
        Ok(r) => r,
        Err(HttpError::Closed) => return,
        Err(HttpError::BodyTooLarge(_)) => {
            shared.metrics.record_bad_request();
            respond(shared, &mut stream, &Response::error(413, "request body too large"));
            return;
        }
        Err(HttpError::Malformed(what)) => {
            shared.metrics.record_bad_request();
            respond(shared, &mut stream, &Response::error(400, what));
            return;
        }
        Err(HttpError::Io(_)) => return,
    };
    drop(reader);

    shared.metrics.record_request();
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            shared.metrics.record_healthz();
            let body = serde_json::json!({
                "models": shared.registry.len(),
                "status": if shared.shutdown.load(Ordering::SeqCst) { "shutting-down" } else { "ok" },
            });
            respond(shared, &mut stream, &Response::json(200, body.to_string()));
        }
        ("GET", "/models") => {
            shared.metrics.record_models();
            let response = ModelsResponse {
                models: shared.registry.infos(),
            };
            match to_canonical_json(&response) {
                Ok(body) => respond(shared, &mut stream, &Response::json(200, body)),
                Err(_) => respond(shared, &mut stream, &Response::error(500, "encoding failed")),
            }
        }
        ("GET", "/metrics") => {
            shared.metrics.record_metrics();
            let body = shared.metrics.prometheus_text(shared.queue.len());
            respond(
                shared,
                &mut stream,
                &Response::text(200, "text/plain; version=0.0.4", body),
            );
        }
        ("GET", "/metrics.json") => {
            shared.metrics.record_metrics();
            let snapshot = shared.metrics.snapshot(shared.queue.len());
            match to_canonical_json(&snapshot) {
                Ok(body) => respond(shared, &mut stream, &Response::json(200, body)),
                Err(_) => respond(shared, &mut stream, &Response::error(500, "encoding failed")),
            }
        }
        ("POST", "/shutdown") => {
            shared.begin_shutdown();
            respond(
                shared,
                &mut stream,
                &Response::json(200, r#"{"status":"shutting-down"}"#.to_owned()),
            );
        }
        ("POST", "/predict") => handle_predict(shared, stream, &request),
        (_, "/healthz" | "/models" | "/metrics" | "/metrics.json" | "/shutdown" | "/predict") => {
            shared.metrics.record_bad_request();
            respond(shared, &mut stream, &Response::error(405, "method not allowed"));
        }
        _ => {
            shared.metrics.record_bad_request();
            respond(shared, &mut stream, &Response::error(404, "no such endpoint"));
        }
    }
}

fn handle_predict(shared: &Arc<Shared>, mut stream: TcpStream, request: &Request) {
    shared.metrics.record_predict();
    let predict: PredictRequest = match serde_json::from_slice(&request.body) {
        Ok(p) => p,
        Err(e) => {
            shared.metrics.record_bad_request();
            respond(
                shared,
                &mut stream,
                &Response::error(400, &format!("invalid predict body: {e}")),
            );
            return;
        }
    };

    // Validate eagerly on the acceptor so bad requests never occupy
    // queue slots, and so worker-side prediction cannot fail for
    // request-shaped reasons.
    let Some(artifact) = shared.registry.get(&predict.model) else {
        shared.metrics.record_bad_request();
        respond(
            shared,
            &mut stream,
            &Response::error(404, &format!("unknown model {:?}", predict.model)),
        );
        return;
    };
    if predict.mix.is_empty() {
        shared.metrics.record_bad_request();
        respond(shared, &mut stream, &Response::error(400, "empty mix"));
        return;
    }
    if let Some(unknown) = predict
        .mix
        .iter()
        .find(|name| !artifact.payload.ss_table.contains_key(*name))
    {
        shared.metrics.record_bad_request();
        respond(
            shared,
            &mut stream,
            &Response::error(
                400,
                &format!("benchmark {unknown:?} is not in model {:?}", predict.model),
            ),
        );
        return;
    }
    if let Some(cores) = predict.target_cores {
        if cores == 0 || cores > 4096 {
            shared.metrics.record_bad_request();
            respond(
                shared,
                &mut stream,
                &Response::error(400, &format!("target_cores {cores} out of range")),
            );
            return;
        }
    }

    let key = predict.cache_key();
    let cached = lock(&shared.cache).get(&key);
    if let Some(body) = cached {
        shared.metrics.record_cache_hit();
        respond(
            shared,
            &mut stream,
            &Response::json(200, body).with_header("x-cache", "hit"),
        );
        return;
    }

    let job = Job {
        stream,
        request: predict,
        key,
        received: Instant::now(),
    };
    match shared.queue.try_push(job) {
        Ok(_depth) => shared.metrics.record_cache_miss(),
        Err(job) => {
            // Load shedding: the queue hands the job (and its connection)
            // back so the refusal can be written on it.
            shared.metrics.record_shed();
            let mut stream = job.stream;
            respond(
                shared,
                &mut stream,
                &Response::error(503, "prediction queue is full; retry shortly")
                    .with_header("retry-after", "1"),
            );
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        match shared.queue.pop_timeout(Duration::from_millis(50)) {
            Some(job) => {
                let model = job.request.model.clone();
                let mut batch = vec![job];
                let extra = shared.queue.drain_matching(
                    |j| j.request.model == model,
                    shared.config.batch_max.saturating_sub(1),
                );
                shared.metrics.record_batched(extra.len() as u64);
                batch.extend(extra);
                // Panic isolation: a panicking batch (poisoned artifact,
                // injected fault) must not take the worker thread down —
                // its connections are dropped, the panic counted, and the
                // worker moves on to the next batch.
                let shielded = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    process_batch(shared, batch);
                }));
                if shielded.is_err() {
                    shared.metrics.record_worker_panic();
                    eprintln!(
                        "sms-serve: worker batch panicked; dropping the batch's \
                         connections and continuing"
                    );
                }
            }
            None => {
                if shared.shutdown.load(Ordering::SeqCst) && shared.queue.is_empty() {
                    break;
                }
            }
        }
    }
}

fn process_batch(shared: &Arc<Shared>, batch: Vec<Job>) {
    // `serve.worker` failpoint: an injected error fails the whole batch
    // with 500s (clients see a typed error, the worker survives); an
    // injected panic exercises the `catch_unwind` shield in `worker_loop`.
    if let Err(e) = sms_faults::check("serve.worker") {
        for job in batch {
            let mut stream = job.stream;
            respond(shared, &mut stream, &Response::error(500, &e.to_string()));
        }
        return;
    }
    let artifact = shared.registry.get(&batch[0].request.model);
    // The load-testing latency knob is charged once per batch (the
    // batching win: coalesced requests share the "model latency"), using
    // the batch's largest requested delay, capped by the server.
    let delay_ms = batch
        .iter()
        .filter_map(|j| j.request.delay_ms)
        .max()
        .unwrap_or(0)
        .min(shared.config.max_delay_ms);
    if delay_ms > 0 {
        thread::sleep(Duration::from_millis(delay_ms));
    }
    for job in batch {
        let response = match &artifact {
            Some(a) => match a.predict_mix(&job.request.mix, job.request.target_cores) {
                Ok(prediction) => {
                    let body = PredictResponse {
                        model: job.request.model.clone(),
                        prediction,
                    };
                    match to_canonical_json(&body) {
                        Ok(text) => {
                            lock(&shared.cache).put(job.key.clone(), text.clone());
                            Response::json(200, text).with_header("x-cache", "miss")
                        }
                        Err(_) => Response::error(500, "encoding failed"),
                    }
                }
                Err(e) => Response::error(400, &e.to_string()),
            },
            None => Response::error(404, "model vanished from the registry"),
        };
        shared
            .metrics
            .record_latency(job.received.elapsed().as_secs_f64());
        let mut stream = job.stream;
        respond(shared, &mut stream, &response);
    }
}
