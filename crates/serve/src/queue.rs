//! Bounded MPMC work queue with load shedding.
//!
//! Accept-side `try_push` never blocks: when the queue is at capacity the
//! caller sheds the request (HTTP 503 + `Retry-After`) instead of letting
//! latency grow without bound. Worker-side `pop_timeout` blocks with a
//! timeout so workers can poll the shutdown flag between jobs.

use crate::sync::{Condvar, Mutex, MutexGuard};
use std::collections::VecDeque;
use std::sync::PoisonError;
use std::time::Duration;

/// Lock a mutex, recovering the guard when a panicking thread poisoned
/// it. The serve crate's mutexes guard plain collections that stay
/// internally consistent across a panic, and a server must keep
/// answering rather than cascade one worker's panic into every request.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A mutex+condvar bounded FIFO queue.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<VecDeque<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Create a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Enqueue without blocking. Returns the new queue depth, or hands
    /// the item back when at capacity so the caller can shed the work
    /// (e.g. answer the connection carried inside it with a 503).
    ///
    /// # Errors
    ///
    /// `Err(item)` when the queue already holds `capacity` items.
    pub fn try_push(&self, item: T) -> Result<usize, T> {
        let mut queue = lock(&self.inner);
        if queue.len() >= self.capacity {
            return Err(item);
        }
        queue.push_back(item);
        let depth = queue.len();
        drop(queue);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Dequeue the oldest item, waiting up to `timeout` for one to
    /// arrive. Returns `None` on timeout so callers can re-check their
    /// shutdown flag.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let mut queue = lock(&self.inner);
        if let Some(item) = queue.pop_front() {
            return Some(item);
        }
        let (mut queue, _timed_out) = self
            .ready
            .wait_timeout(queue, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        queue.pop_front()
    }

    /// Remove and return up to `max` queued items matching `predicate`,
    /// preserving FIFO order among both the taken and the remaining
    /// items. The micro-batching hook: a worker that just dequeued a job
    /// for model M drains other queued jobs for M and answers them in one
    /// batch.
    pub fn drain_matching<F: FnMut(&T) -> bool>(&self, mut predicate: F, max: usize) -> Vec<T> {
        let mut queue = lock(&self.inner);
        let mut taken = Vec::new();
        let mut i = 0;
        while i < queue.len() && taken.len() < max {
            if predicate(&queue[i]) {
                if let Some(item) = queue.remove(i) {
                    taken.push(item);
                }
            } else {
                i += 1;
            }
        }
        taken
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        lock(&self.inner).len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Wake every waiting worker (used at shutdown so blocked
    /// `pop_timeout` calls re-check their flag immediately).
    pub fn notify_all(&self) {
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_when_full() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(1));
        assert_eq!(q.try_push(3), Ok(2));
    }

    #[test]
    fn pop_times_out_when_empty() {
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), None);
    }

    #[test]
    fn drain_matching_preserves_order_and_respects_max() {
        let q = BoundedQueue::new(8);
        for v in [1, 2, 3, 4, 5, 6] {
            q.try_push(v).unwrap();
        }
        let even = q.drain_matching(|v| v % 2 == 0, 2);
        assert_eq!(even, vec![2, 4]);
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(3));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(5));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(6));
    }

    #[test]
    fn wakes_a_blocked_consumer() {
        let q = Arc::new(BoundedQueue::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_timeout(Duration::from_secs(5)))
        };
        // Give the consumer a moment to block, then feed it.
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(42u32).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(42));
    }
}
