//! JSON request/response bodies of the prediction service.

use serde::{Deserialize, Serialize};
use sms_core::artifact::{MixPrediction, ModelArtifact};

/// Body of `POST /predict`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictRequest {
    /// Name of a registered model artifact.
    pub model: String,
    /// Workload mix: one benchmark name per target core slot. Benchmarks
    /// must appear in the model's measurement table.
    pub mix: Vec<String>,
    /// Core count to extrapolate to; defaults to the model's training
    /// target.
    #[serde(default)]
    pub target_cores: Option<u32>,
    /// Artificial per-request model latency in milliseconds, capped by
    /// the server. A load-testing knob: it lets tests and drills fill the
    /// queue deterministically. Not part of the cache key.
    #[serde(default)]
    pub delay_ms: Option<u64>,
}

impl PredictRequest {
    /// Canonical cache key: the semantic fields only (`delay_ms` never
    /// affects the answer), serialized with sorted keys so two
    /// differently-ordered request bodies hit the same cache entry.
    pub fn cache_key(&self) -> String {
        serde_json::json!({
            "mix": self.mix,
            "model": self.model,
            "target_cores": self.target_cores,
        })
        .to_string()
    }
}

/// Body of a successful `POST /predict` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictResponse {
    /// The model that answered.
    pub model: String,
    /// `true` when the model's circuit breaker was open and the answer is
    /// the analytic fallback rather than the ML predictor. Omitted (and
    /// so absent from cache keys and golden bodies) on normal responses.
    #[serde(default, skip_serializing_if = "is_false")]
    pub degraded: bool,
    /// The prediction: per-core IPC, STP, and the model's
    /// cross-validation error.
    #[serde(flatten)]
    pub prediction: MixPrediction,
}

#[allow(clippy::trivially_copy_pass_by_ref)] // serde's skip_serializing_if signature
fn is_false(v: &bool) -> bool {
    !v
}

/// One entry of `GET /models`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelInfo {
    /// Registry name.
    pub name: String,
    /// ML technique (`DT`/`RF`/`SVM`/`KRR`).
    pub kind: String,
    /// Extrapolation curve family (`linear`/`power`/`log`).
    pub curve: String,
    /// Core count of the training target system.
    pub target_cores: u32,
    /// Multi-core scale-model ladder used in training.
    pub ms_cores: Vec<u32>,
    /// Number of benchmarks in the measurement table.
    pub benchmarks: usize,
    /// Leave-one-out cross-validation error, when available.
    pub cv_error: Option<f64>,
}

impl ModelInfo {
    /// Summarize a loaded artifact.
    pub fn from_artifact(artifact: &ModelArtifact) -> Self {
        Self {
            name: artifact.name.clone(),
            kind: artifact.payload.kind.to_string(),
            curve: artifact.payload.curve.to_string(),
            target_cores: artifact.payload.cfg.target.num_cores,
            ms_cores: artifact.payload.cfg.ms_cores.clone(),
            benchmarks: artifact.payload.ss_table.len(),
            cv_error: artifact.payload.cv_error,
        }
    }
}

/// Body of `GET /models`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelsResponse {
    /// All registered models, sorted by name.
    pub models: Vec<ModelInfo>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degraded_flag_is_omitted_when_false() {
        let normal = PredictResponse {
            model: "m".to_owned(),
            degraded: false,
            prediction: MixPrediction {
                benchmarks: vec!["a".to_owned()],
                target_cores: 8,
                per_core_ipc: vec![1.0],
                stp: 1.0,
                cv_error: None,
            },
        };
        // Non-degraded bodies stay byte-identical to the pre-breaker wire
        // format (golden bodies and cache entries rely on this).
        let text = serde_json::to_string(&normal).unwrap();
        assert!(!text.contains("degraded"));
        let flagged = PredictResponse {
            degraded: true,
            ..normal.clone()
        };
        assert!(serde_json::to_string(&flagged)
            .unwrap()
            .contains("\"degraded\":true"));
        // An absent field parses back as false.
        let back: PredictResponse = serde_json::from_str(&text).unwrap();
        assert_eq!(back, normal);
    }

    #[test]
    fn cache_key_ignores_delay_and_field_order() {
        let a = PredictRequest {
            model: "m".into(),
            mix: vec!["x".into(), "y".into()],
            target_cores: Some(32),
            delay_ms: Some(250),
        };
        let b = PredictRequest {
            delay_ms: None,
            ..a.clone()
        };
        assert_eq!(a.cache_key(), b.cache_key());
        // Different order in the JSON body parses to the same key.
        let c: PredictRequest =
            serde_json::from_str(r#"{"target_cores":32,"mix":["x","y"],"model":"m"}"#).unwrap();
        assert_eq!(c.cache_key(), a.cache_key());
        // But a different mix is a different key.
        let d = PredictRequest {
            mix: vec!["y".into(), "x".into()],
            ..a.clone()
        };
        assert_ne!(d.cache_key(), a.cache_key());
    }
}
