//! Model registry: the on-disk collection of trained artifacts the
//! server loads at startup, with self-healing load paths.
//!
//! Artifacts live under `<results>/cache/models/` (next to the
//! simulation-result cache, written by `sms train --save`). The registry
//! scans that directory and validates every `*.json` with the full
//! [`ModelArtifact::load`] checks. Loads are resilient in two ways:
//!
//! * **Transient failures retry.** Every load goes through a bounded
//!   retry loop with deterministic jittered backoff (the jitter is a pure
//!   function of the path and attempt number, so chaos tests replay
//!   identically). I/O errors — including ones injected at the
//!   `artifact.load` failpoint — are treated as transient; a file that
//!   stays unreadable is parked on a pending list and re-probed later.
//! * **Corrupt artifacts quarantine.** A file that reads fine but fails
//!   validation (bad schema, version, or checksum) is moved to
//!   `<dir>/quarantine/` with a `<file>.reason.json` record — the PR 1 /
//!   PR 4 cache idiom — so one corrupt artifact can never take the
//!   service down or be re-parsed on every scan. Periodic re-probes
//!   ([`ModelRegistry::maybe_reprobe`], driven by the server's acceptor)
//!   retry quarantined files; a repaired file is absolved automatically:
//!   moved back, re-registered, its reason record deleted.
//!
//! Quarantine and absolution counts surface as
//! `sms_serve_artifact_quarantined_total` /
//! `sms_serve_artifact_absolved_total` via [`ModelRegistry::stats`].

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::sync::Mutex;
use std::time::{Duration, Instant};

use sms_core::artifact::{ArtifactError, ModelArtifact};

use crate::api::ModelInfo;
use crate::queue::lock;

/// The models directory convention under a results root:
/// `<results>/cache/models`.
pub fn models_dir(results_root: &Path) -> PathBuf {
    results_root.join("cache").join("models")
}

/// Load attempts per file before declaring a transient failure sticky.
const LOAD_ATTEMPTS: u32 = 3;

/// Counters describing the registry's self-healing activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegistryStats {
    /// Artifacts moved to quarantine since the registry opened.
    pub quarantined_total: u64,
    /// Quarantined artifacts that recovered and were re-registered.
    pub absolved_total: u64,
    /// Load attempts beyond each file's first (retries after transient
    /// failures).
    pub load_retries_total: u64,
    /// Files currently parked on the transient-failure pending list.
    pub pending: usize,
}

#[derive(Debug, Default)]
struct RegistryState {
    models: BTreeMap<String, Arc<ModelArtifact>>,
    /// Files whose last load failed transiently; re-probed periodically.
    pending: Vec<PathBuf>,
    last_probe: Option<Instant>,
}

/// An in-memory index of validated model artifacts (interior-mutable:
/// the server re-probes through a shared reference).
#[derive(Debug)]
pub struct ModelRegistry {
    dir: PathBuf,
    state: Mutex<RegistryState>,
    // sms-lint: atomic(counter): quarantine tally, exported via stats()
    quarantined_total: AtomicU64,
    // sms-lint: atomic(counter): absolve tally, exported via stats()
    absolved_total: AtomicU64,
    // sms-lint: atomic(counter): load-retry tally, exported via stats()
    load_retries_total: AtomicU64,
}

impl ModelRegistry {
    /// Open a registry over `dir`, creating the directory if missing and
    /// scanning it for artifacts.
    ///
    /// # Errors
    ///
    /// Fails only when the directory cannot be created or listed;
    /// individually invalid artifact files are quarantined (or parked for
    /// re-probing) with a warning.
    pub fn open(dir: &Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let registry = Self {
            dir: dir.to_path_buf(),
            state: Mutex::new(RegistryState::default()),
            quarantined_total: AtomicU64::new(0),
            absolved_total: AtomicU64::new(0),
            load_retries_total: AtomicU64::new(0),
        };
        registry.rescan()?;
        Ok(registry)
    }

    /// An empty registry with no backing directory scan (for tests and
    /// in-process composition via [`ModelRegistry::insert`]).
    pub fn in_memory() -> Self {
        Self {
            dir: PathBuf::new(),
            state: Mutex::new(RegistryState::default()),
            quarantined_total: AtomicU64::new(0),
            absolved_total: AtomicU64::new(0),
            load_retries_total: AtomicU64::new(0),
        }
    }

    /// Re-scan the backing directory, replacing the in-memory index.
    /// Returns the number of valid artifacts loaded.
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be listed.
    pub fn rescan(&self) -> std::io::Result<usize> {
        let mut models = BTreeMap::new();
        let mut pending = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            if !is_artifact_file(&path) {
                continue;
            }
            match self.load_with_retry(&path) {
                Ok(artifact) => {
                    let name = artifact.name.clone();
                    if models.insert(name.clone(), Arc::new(artifact)).is_some() {
                        eprintln!(
                            "[registry] warning: duplicate model name {name:?}; keeping {}",
                            path.display()
                        );
                    }
                }
                Err(e) if is_transient(&e) => {
                    eprintln!(
                        "[registry] warning: {} failed transiently ({e}); will re-probe",
                        path.display()
                    );
                    pending.push(path);
                }
                Err(e) => self.quarantine_file(&path, &e),
            }
        }
        let count = models.len();
        let mut state = lock(&self.state);
        state.models = models;
        state.pending = pending;
        Ok(count)
    }

    /// Register an artifact directly (no disk involved).
    pub fn insert(&self, artifact: ModelArtifact) {
        lock(&self.state)
            .models
            .insert(artifact.name.clone(), Arc::new(artifact));
    }

    /// Fetch a model by name.
    pub fn get(&self, name: &str) -> Option<Arc<ModelArtifact>> {
        lock(&self.state).models.get(name).cloned()
    }

    /// Summaries of every registered model, sorted by name.
    pub fn infos(&self) -> Vec<ModelInfo> {
        lock(&self.state)
            .models
            .values()
            .map(|a| ModelInfo::from_artifact(a))
            .collect()
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<String> {
        lock(&self.state).models.keys().cloned().collect()
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where quarantined artifacts and their reason records live.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join("quarantine")
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        lock(&self.state).models.len()
    }

    /// Whether no models are registered.
    pub fn is_empty(&self) -> bool {
        lock(&self.state).models.is_empty()
    }

    /// Self-healing counters, for the server's metric export.
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            quarantined_total: self.quarantined_total.load(Ordering::Relaxed),
            absolved_total: self.absolved_total.load(Ordering::Relaxed),
            load_retries_total: self.load_retries_total.load(Ordering::Relaxed),
            pending: lock(&self.state).pending.len(),
        }
    }

    /// Run [`ModelRegistry::reprobe`] if at least `interval` has elapsed
    /// since the last probe (or none ran yet). Returns whether a probe
    /// ran. No-op for in-memory registries.
    pub fn maybe_reprobe(&self, interval: Duration) -> bool {
        if self.dir.as_os_str().is_empty() {
            return false;
        }
        {
            let mut state = lock(&self.state);
            let due = state.last_probe.is_none_or(|t| t.elapsed() >= interval);
            if !due {
                return false;
            }
            state.last_probe = Some(Instant::now());
        }
        self.reprobe();
        true
    }

    /// Retry every pending (transiently failed) file and every
    /// quarantined artifact. Pending files that now load are registered;
    /// quarantined files that now pass validation are absolved — moved
    /// back into the models directory, re-registered, their reason record
    /// removed. Returns the number of newly registered models.
    pub fn reprobe(&self) -> usize {
        let mut registered = 0;
        // Pending list first: take it, retry outside the lock, put the
        // still-failing ones back.
        let pending = std::mem::take(&mut lock(&self.state).pending);
        let mut still_pending = Vec::new();
        for path in pending {
            if !path.exists() {
                continue;
            }
            match self.load_with_retry(&path) {
                Ok(artifact) => {
                    self.insert(artifact);
                    registered += 1;
                }
                Err(e) if is_transient(&e) => still_pending.push(path),
                Err(e) => self.quarantine_file(&path, &e),
            }
        }
        lock(&self.state).pending.extend(still_pending);

        // Then the quarantine: a repaired file is absolved.
        let qdir = self.quarantine_dir();
        let Ok(entries) = std::fs::read_dir(&qdir) else {
            return registered;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if !is_artifact_file(&path) {
                continue;
            }
            let Ok(artifact) = self.load_with_retry(&path) else {
                continue;
            };
            let Some(file_name) = path.file_name() else {
                continue;
            };
            let home = self.dir.join(file_name);
            if let Err(e) = std::fs::rename(&path, &home) {
                eprintln!(
                    "[registry] warning: could not absolve {}: {e}",
                    path.display()
                );
                continue;
            }
            if let Err(e) = std::fs::remove_file(reason_path(&path)) {
                // The artifact is healthy again; a stale reason record is
                // cosmetic, but note it.
                if e.kind() != std::io::ErrorKind::NotFound {
                    eprintln!(
                        "[registry] warning: could not remove reason record for {}: {e}",
                        path.display()
                    );
                }
            }
            let name = artifact.name.clone();
            self.insert(artifact);
            self.absolved_total.fetch_add(1, Ordering::Relaxed);
            registered += 1;
            eprintln!(
                "[registry] absolved model {name:?}: {} passed validation again",
                home.display()
            );
        }
        registered
    }

    /// Load `path` with up to [`LOAD_ATTEMPTS`] attempts, sleeping a
    /// deterministically jittered backoff between transient failures.
    /// Each attempt passes through the `artifact.load` failpoint.
    fn load_with_retry(&self, path: &Path) -> Result<ModelArtifact, ArtifactError> {
        let mut attempt = 0;
        loop {
            let result = sms_faults::check_io("artifact.load")
                .map_err(ArtifactError::from)
                .and_then(|()| ModelArtifact::load(path));
            match result {
                Ok(artifact) => return Ok(artifact),
                Err(e) if is_transient(&e) && attempt + 1 < LOAD_ATTEMPTS => {
                    self.load_retries_total.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(backoff_with_jitter(path, attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Move a validation-failing artifact into quarantine with a reason
    /// record. Best-effort: when the move itself fails the file stays put
    /// (and is skipped until the next scan).
    fn quarantine_file(&self, path: &Path, error: &ArtifactError) {
        let qdir = self.quarantine_dir();
        if let Err(e) = std::fs::create_dir_all(&qdir) {
            eprintln!(
                "[registry] warning: cannot create {}: {e}; skipping {}",
                qdir.display(),
                path.display()
            );
            return;
        }
        let Some(file_name) = path.file_name() else {
            return;
        };
        let dest = qdir.join(file_name);
        if let Err(e) = std::fs::rename(path, &dest) {
            eprintln!(
                "[registry] warning: cannot quarantine {}: {e}",
                path.display()
            );
            return;
        }
        let reason = serde_json::json!({
            "artifact": file_name.to_string_lossy(),
            "error": error.to_string(),
        });
        let reason_file = reason_path(&dest);
        if let Err(e) = std::fs::write(&reason_file, reason.to_string()) {
            eprintln!(
                "[registry] warning: cannot write {}: {e}",
                reason_file.display()
            );
        }
        self.quarantined_total.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "[registry] quarantined {} -> {} ({error})",
            path.display(),
            dest.display()
        );
    }
}

/// Whether `path` looks like an artifact file: `*.json` but not a
/// quarantine reason record (`*.reason.json`).
fn is_artifact_file(path: &Path) -> bool {
    if path.extension().and_then(|e| e.to_str()) != Some("json") {
        return false;
    }
    path.file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| !n.ends_with(".reason.json"))
}

/// The reason-record path next to a quarantined artifact.
fn reason_path(quarantined: &Path) -> PathBuf {
    let mut name = quarantined
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    name.push_str(".reason.json");
    quarantined.with_file_name(name)
}

/// Whether a load failure is worth retrying/re-probing (I/O trouble)
/// rather than quarantining (the bytes themselves are bad).
fn is_transient(e: &ArtifactError) -> bool {
    matches!(e, ArtifactError::Io(_))
}

/// Exponential backoff with deterministic jitter: attempt `n` sleeps
/// `5·2ⁿ ms` plus a jitter in `[0, 5·2ⁿ)` ms derived by hashing the path
/// and attempt (FNV-1a + splitmix64), so concurrent loads de-synchronize
/// but tests replay bit-identically.
fn backoff_with_jitter(path: &Path, attempt: u32) -> Duration {
    let base = 5u64 << attempt.min(4);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in path.to_string_lossy().as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= u64::from(attempt);
    // splitmix64 finalizer for avalanche.
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    Duration::from_millis(base + h % base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sms_core::artifact::{ArtifactPayload, ARTIFACT_SCHEMA, ARTIFACT_SCHEMA_VERSION};
    use sms_core::features::SsMeasurement;
    use sms_core::pipeline::ExperimentConfig;
    use sms_core::predictor::{MlKind, ModelParams};
    use sms_core::regressor::{RegressionExtrapolator, ScaleModelTraining};
    use sms_ml::fit::CurveModel;

    fn tiny_artifact(name: &str) -> ModelArtifact {
        let ms_cores = vec![2u32, 4];
        let training: Vec<ScaleModelTraining> = ms_cores
            .iter()
            .map(|&cores| ScaleModelTraining {
                cores,
                rows: (0..12)
                    .map(|i| {
                        let ipc = 0.5 + (i % 6) as f64 * 0.3;
                        let bw = (i % 4) as f64 * 0.7;
                        vec![ipc, bw, bw * f64::from(cores - 1)]
                    })
                    .collect(),
                targets: (0..12)
                    .map(|i| 0.5 + (i % 6) as f64 * 0.3 - 0.02 * f64::from(cores))
                    .collect(),
            })
            .collect();
        let extrapolator = RegressionExtrapolator::train(
            MlKind::Svm,
            CurveModel::Logarithmic,
            &training,
            &ModelParams::default(),
            1234,
        );
        let mut ss_table = std::collections::BTreeMap::new();
        ss_table.insert(
            "alpha".to_owned(),
            SsMeasurement {
                ipc: 1.0,
                bandwidth: 0.8,
            },
        );
        ModelArtifact::new(
            name,
            ArtifactPayload {
                kind: MlKind::Svm,
                curve: CurveModel::Logarithmic,
                cfg: ExperimentConfig {
                    ms_cores,
                    ..ExperimentConfig::default()
                },
                extrapolator,
                ss_table,
                cv_error: Some(0.1),
                trained_on: vec!["alpha".to_owned()],
            },
        )
    }

    #[test]
    fn scans_valid_quarantines_invalid() {
        let dir = std::env::temp_dir().join(format!("sms-registry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        tiny_artifact("good").save_in(&dir).unwrap();
        std::fs::write(dir.join("broken.json"), "{not json").unwrap();
        std::fs::write(dir.join("ignored.txt"), "not an artifact").unwrap();

        let registry = ModelRegistry::open(&dir).unwrap();
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.names(), vec!["good".to_owned()]);
        let infos = registry.infos();
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].kind, "SVM");
        assert_eq!(infos[0].curve, "log");
        assert!(registry.get("good").is_some());
        assert!(registry.get("missing").is_none());
        // The invalid file was moved out of the scan path with a reason
        // record.
        assert!(!dir.join("broken.json").exists());
        assert!(registry.quarantine_dir().join("broken.json").exists());
        assert!(registry
            .quarantine_dir()
            .join("broken.json.reason.json")
            .exists());
        assert_eq!(registry.stats().quarantined_total, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checksum_quarantines_then_absolves_after_repair() {
        let dir = std::env::temp_dir().join(format!("sms-registry-absolve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let artifact = tiny_artifact("healme");
        let path = artifact.save_in(&dir).unwrap();
        let good_bytes = std::fs::read(&path).unwrap();
        // Corrupt the payload without breaking the JSON: load() now fails
        // its checksum verification.
        let tampered = String::from_utf8(good_bytes.clone())
            .unwrap()
            .replace("\"cv_error\": 0.1", "\"cv_error\": 0.9");
        assert_ne!(tampered.as_bytes(), good_bytes.as_slice());
        std::fs::write(&path, &tampered).unwrap();

        let registry = ModelRegistry::open(&dir).unwrap();
        assert!(registry.is_empty());
        let stats = registry.stats();
        assert_eq!(stats.quarantined_total, 1);
        assert_eq!(stats.absolved_total, 0);
        let qfile = registry.quarantine_dir().join(path.file_name().unwrap());
        assert!(qfile.exists());
        let reason = std::fs::read_to_string(reason_path(&qfile)).unwrap();
        assert!(reason.contains("checksum mismatch"), "{reason}");

        // A probe before repair changes nothing.
        assert_eq!(registry.reprobe(), 0);
        assert!(registry.is_empty());

        // Repair the quarantined file in place; the next probe absolves
        // it: re-registered, moved home, reason record gone.
        std::fs::write(&qfile, &good_bytes).unwrap();
        assert_eq!(registry.reprobe(), 1);
        assert_eq!(registry.names(), vec!["healme".to_owned()]);
        assert!(path.exists());
        assert!(!qfile.exists());
        assert!(!reason_path(&qfile).exists());
        assert_eq!(registry.stats().absolved_total, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn maybe_reprobe_respects_interval() {
        let dir =
            std::env::temp_dir().join(format!("sms-registry-interval-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let registry = ModelRegistry::open(&dir).unwrap();
        // First call probes, an immediate second call is debounced.
        assert!(registry.maybe_reprobe(Duration::from_secs(3600)));
        assert!(!registry.maybe_reprobe(Duration::from_secs(3600)));
        // In-memory registries never probe.
        assert!(!ModelRegistry::in_memory().maybe_reprobe(Duration::ZERO));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_creates_missing_directory() {
        let dir = std::env::temp_dir()
            .join(format!("sms-registry-new-{}", std::process::id()))
            .join("cache")
            .join("models");
        let _ = std::fs::remove_dir_all(&dir);
        let registry = ModelRegistry::open(&dir).unwrap();
        assert!(registry.is_empty());
        assert!(dir.is_dir());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schema_constants_are_wired() {
        // The registry depends on load()'s envelope checks; pin the
        // constants it relies on.
        assert_eq!(ARTIFACT_SCHEMA, "sms-model-artifact");
        assert_eq!(ARTIFACT_SCHEMA_VERSION, 1);
        assert_eq!(
            models_dir(Path::new("results")),
            Path::new("results").join("cache").join("models")
        );
    }

    #[test]
    fn in_memory_insert_and_lookup() {
        let registry = ModelRegistry::in_memory();
        registry.insert(tiny_artifact("mem"));
        assert_eq!(registry.len(), 1);
        let a = registry.get("mem").unwrap();
        assert_eq!(a.name, "mem");
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = Path::new("/tmp/x.json");
        for attempt in 0..4 {
            let a = backoff_with_jitter(p, attempt);
            let b = backoff_with_jitter(p, attempt);
            assert_eq!(a, b);
            let base = 5u64 << attempt;
            assert!(a.as_millis() >= u128::from(base));
            assert!(a.as_millis() < u128::from(2 * base));
        }
        // Different paths jitter differently (de-synchronization).
        assert_ne!(
            backoff_with_jitter(Path::new("/a.json"), 1),
            backoff_with_jitter(Path::new("/b.json"), 1)
        );
    }

    #[test]
    fn reason_and_artifact_file_helpers() {
        assert!(is_artifact_file(Path::new("/m/x.json")));
        assert!(!is_artifact_file(Path::new("/m/x.reason.json")));
        assert!(!is_artifact_file(Path::new("/m/x.txt")));
        assert_eq!(
            reason_path(Path::new("/q/x.json")),
            Path::new("/q/x.json.reason.json")
        );
    }
}
