//! Model registry: the on-disk collection of trained artifacts the
//! server loads at startup.
//!
//! Artifacts live under `<results>/cache/models/` (next to the
//! simulation-result cache, written by `sms train --save`). The registry
//! scans that directory, validates every `*.json` with the full
//! [`ModelArtifact::load`] checks, and keeps the valid ones in memory
//! keyed by artifact name. Invalid files are skipped with a warning —
//! one corrupt artifact must not take the service down.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use sms_core::artifact::ModelArtifact;

use crate::api::ModelInfo;

/// The models directory convention under a results root:
/// `<results>/cache/models`.
pub fn models_dir(results_root: &Path) -> PathBuf {
    results_root.join("cache").join("models")
}

/// An in-memory index of validated model artifacts.
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    dir: PathBuf,
    models: BTreeMap<String, Arc<ModelArtifact>>,
}

impl ModelRegistry {
    /// Open a registry over `dir`, creating the directory if missing and
    /// scanning it for artifacts.
    ///
    /// # Errors
    ///
    /// Fails only when the directory cannot be created or listed;
    /// individually invalid artifact files are skipped with a warning.
    pub fn open(dir: &Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut registry = Self {
            dir: dir.to_path_buf(),
            models: BTreeMap::new(),
        };
        registry.rescan()?;
        Ok(registry)
    }

    /// An empty registry with no backing directory scan (for tests and
    /// in-process composition via [`ModelRegistry::insert`]).
    pub fn in_memory() -> Self {
        Self {
            dir: PathBuf::new(),
            models: BTreeMap::new(),
        }
    }

    /// Re-scan the backing directory, replacing the in-memory index.
    /// Returns the number of valid artifacts loaded.
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be listed.
    pub fn rescan(&mut self) -> std::io::Result<usize> {
        self.models.clear();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            match ModelArtifact::load(&path) {
                Ok(artifact) => {
                    let name = artifact.name.clone();
                    if self.models.insert(name.clone(), Arc::new(artifact)).is_some() {
                        eprintln!(
                            "[registry] warning: duplicate model name {name:?}; keeping {}",
                            path.display()
                        );
                    }
                }
                Err(e) => {
                    eprintln!(
                        "[registry] warning: skipping {}: {e}",
                        path.display()
                    );
                }
            }
        }
        Ok(self.models.len())
    }

    /// Register an artifact directly (no disk involved).
    pub fn insert(&mut self, artifact: ModelArtifact) {
        self.models
            .insert(artifact.name.clone(), Arc::new(artifact));
    }

    /// Fetch a model by name.
    pub fn get(&self, name: &str) -> Option<Arc<ModelArtifact>> {
        self.models.get(name).cloned()
    }

    /// Summaries of every registered model, sorted by name.
    pub fn infos(&self) -> Vec<ModelInfo> {
        self.models
            .values()
            .map(|a| ModelInfo::from_artifact(a))
            .collect()
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.models.keys().cloned().collect()
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether no models are registered.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sms_core::artifact::{ArtifactPayload, ARTIFACT_SCHEMA, ARTIFACT_SCHEMA_VERSION};
    use sms_core::features::SsMeasurement;
    use sms_core::pipeline::ExperimentConfig;
    use sms_core::predictor::{MlKind, ModelParams};
    use sms_core::regressor::{RegressionExtrapolator, ScaleModelTraining};
    use sms_ml::fit::CurveModel;

    fn tiny_artifact(name: &str) -> ModelArtifact {
        let ms_cores = vec![2u32, 4];
        let training: Vec<ScaleModelTraining> = ms_cores
            .iter()
            .map(|&cores| ScaleModelTraining {
                cores,
                rows: (0..12)
                    .map(|i| {
                        let ipc = 0.5 + (i % 6) as f64 * 0.3;
                        let bw = (i % 4) as f64 * 0.7;
                        vec![ipc, bw, bw * f64::from(cores - 1)]
                    })
                    .collect(),
                targets: (0..12)
                    .map(|i| 0.5 + (i % 6) as f64 * 0.3 - 0.02 * f64::from(cores))
                    .collect(),
            })
            .collect();
        let extrapolator = RegressionExtrapolator::train(
            MlKind::Svm,
            CurveModel::Logarithmic,
            &training,
            &ModelParams::default(),
            1234,
        );
        let mut ss_table = std::collections::BTreeMap::new();
        ss_table.insert(
            "alpha".to_owned(),
            SsMeasurement {
                ipc: 1.0,
                bandwidth: 0.8,
            },
        );
        ModelArtifact::new(
            name,
            ArtifactPayload {
                kind: MlKind::Svm,
                curve: CurveModel::Logarithmic,
                cfg: ExperimentConfig {
                    ms_cores,
                    ..ExperimentConfig::default()
                },
                extrapolator,
                ss_table,
                cv_error: Some(0.1),
                trained_on: vec!["alpha".to_owned()],
            },
        )
    }

    #[test]
    fn scans_valid_skips_invalid() {
        let dir = std::env::temp_dir().join(format!("sms-registry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        tiny_artifact("good").save_in(&dir).unwrap();
        std::fs::write(dir.join("broken.json"), "{not json").unwrap();
        std::fs::write(dir.join("ignored.txt"), "not an artifact").unwrap();

        let registry = ModelRegistry::open(&dir).unwrap();
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.names(), vec!["good".to_owned()]);
        let infos = registry.infos();
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].kind, "SVM");
        assert_eq!(infos[0].curve, "log");
        assert!(registry.get("good").is_some());
        assert!(registry.get("missing").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_creates_missing_directory() {
        let dir = std::env::temp_dir()
            .join(format!("sms-registry-new-{}", std::process::id()))
            .join("cache")
            .join("models");
        let _ = std::fs::remove_dir_all(&dir);
        let registry = ModelRegistry::open(&dir).unwrap();
        assert!(registry.is_empty());
        assert!(dir.is_dir());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schema_constants_are_wired() {
        // The registry depends on load()'s envelope checks; pin the
        // constants it relies on.
        assert_eq!(ARTIFACT_SCHEMA, "sms-model-artifact");
        assert_eq!(ARTIFACT_SCHEMA_VERSION, 1);
        assert_eq!(
            models_dir(Path::new("results")),
            Path::new("results").join("cache").join("models")
        );
    }

    #[test]
    fn in_memory_insert_and_lookup() {
        let mut registry = ModelRegistry::in_memory();
        registry.insert(tiny_artifact("mem"));
        assert_eq!(registry.len(), 1);
        let a = registry.get("mem").unwrap();
        assert_eq!(a.name, "mem");
    }
}
