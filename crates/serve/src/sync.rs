//! Sync primitives, swappable for loom's model-checked doubles.
//!
//! Every lock in this crate goes through these aliases (plus the
//! poison-recovering [`crate::queue::lock`] helper), so the `loom` CI
//! job can rebuild the whole crate with `--cfg loom` and exhaustively
//! explore thread interleavings in `tests/loom_models.rs`. Normal
//! builds compile straight to `std::sync` with zero indirection; loom
//! is a dev-only dependency added by that job, never by the library.

#[cfg(loom)]
pub(crate) use loom::sync::{Condvar, Mutex, MutexGuard};
#[cfg(not(loom))]
pub(crate) use std::sync::{Condvar, Mutex, MutexGuard};
