//! LRU response cache keyed on canonicalized request bodies.
//!
//! Predictions are deterministic functions of `(model, mix,
//! target_cores)`, so the server memoizes whole response bodies. The key
//! is the canonical JSON of the semantic request fields (see
//! [`crate::api::PredictRequest::cache_key`]), making the cache immune to
//! field order and to non-semantic knobs.

use std::collections::{BTreeMap, VecDeque};

/// A plain LRU map from canonical request keys to response bodies.
///
/// Not thread-safe by itself; the server wraps it in a mutex. Recency is
/// tracked with a deque of keys — `O(capacity)` updates, which is
/// irrelevant at the few-hundred-entry capacities used here. The map is
/// a `BTreeMap` so any future iteration (debug dumps, stats endpoints)
/// is deterministic by construction.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    map: BTreeMap<String, String>,
    recency: VecDeque<String>,
}

impl LruCache {
    /// Create a cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            map: BTreeMap::new(),
            recency: VecDeque::with_capacity(capacity),
        }
    }

    /// Look up a response body, marking the entry most-recently used.
    pub fn get(&mut self, key: &str) -> Option<String> {
        let value = self.map.get(key).cloned()?;
        self.touch(key);
        Some(value)
    }

    /// Insert (or refresh) an entry, evicting the least-recently-used one
    /// when at capacity.
    pub fn put(&mut self, key: String, value: String) {
        if self.map.insert(key.clone(), value).is_some() {
            self.touch(&key);
            return;
        }
        self.recency.push_back(key);
        while self.map.len() > self.capacity {
            if let Some(oldest) = self.recency.pop_front() {
                self.map.remove(&oldest);
            } else {
                break;
            }
        }
    }

    fn touch(&mut self, key: &str) {
        if let Some(pos) = self.recency.iter().position(|k| k == key) {
            if let Some(k) = self.recency.remove(pos) {
                self.recency.push_back(k);
            }
        }
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.put("a".into(), "1".into());
        c.put("b".into(), "2".into());
        assert_eq!(c.get("a"), Some("1".into())); // refresh a
        c.put("c".into(), "3".into()); // evicts b
        assert_eq!(c.get("b"), None);
        assert_eq!(c.get("a"), Some("1".into()));
        assert_eq!(c.get("c"), Some("3".into()));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn refreshing_an_entry_does_not_grow_the_cache() {
        let mut c = LruCache::new(2);
        c.put("a".into(), "1".into());
        c.put("a".into(), "2".into());
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("a"), Some("2".into()));
    }

    #[test]
    fn zero_capacity_clamped_to_one() {
        let mut c = LruCache::new(0);
        assert_eq!(c.capacity(), 1);
        c.put("a".into(), "1".into());
        c.put("b".into(), "2".into());
        assert_eq!(c.len(), 1);
        assert!(c.get("b").is_some());
        assert!(!c.is_empty());
    }
}
