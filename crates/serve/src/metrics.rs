//! Live server metrics, served by `GET /metrics` (Prometheus text) and
//! `GET /metrics.json` (JSON snapshot).
//!
//! Counters live in a per-server [`sms_obs::Registry`] — one registry per
//! [`ServerMetrics`] so concurrently running servers (tests spawn
//! several per process) never cross-count — and are exported straight in
//! the Prometheus exposition format. The JSON [`MetricsSnapshot`] keeps
//! the pre-registry field layout for existing consumers, and latency
//! tails are still computed with the same
//! [`sms_bench::telemetry::percentiles`] helper the sweep manifest uses,
//! so `sms sweep` and `sms serve` report p50/p95/p99 identically; a
//! registry histogram (`sms_serve_predict_latency_micros`) carries the
//! full latency distribution for Prometheus scrapers.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use sms_bench::telemetry::{percentiles, Percentiles};
use sms_obs::{Counter, Family, Gauge, Histogram, Registry};

use crate::queue::lock;

/// How many of the most recent prediction latencies feed the percentile
/// estimate.
pub const LATENCY_WINDOW: usize = 4096;

/// Thread-safe metric collectors backed by an isolated obs registry.
/// All recording methods take `&self`.
#[derive(Debug)]
pub struct ServerMetrics {
    started: Instant,
    registry: Arc<Registry>,
    requests_total: Arc<Counter>,
    endpoint_requests: Arc<Family<Counter>>,
    bad_requests: Arc<Counter>,
    shed_total: Arc<Counter>,
    cache_requests: Arc<Family<Counter>>,
    batched_requests: Arc<Counter>,
    worker_panics: Arc<Counter>,
    write_errors: Arc<Counter>,
    deadline_exceeded: Arc<Family<Counter>>,
    degraded_total: Arc<Counter>,
    accept_errors: Arc<Counter>,
    artifact_quarantined: Arc<Counter>,
    artifact_absolved: Arc<Counter>,
    breaker_transitions: Arc<Family<Counter>>,
    inflight_connections: Arc<Gauge>,
    queue_depth: Arc<Gauge>,
    uptime_seconds: Arc<Gauge>,
    latency_micros: Arc<Histogram>,
    /// Count of latency observations, mirrored outside the histogram so
    /// tests can assert on it without decoding buckets.
    // sms-lint: atomic(counter): observation tally, test/export reads only
    latency_count: AtomicU64,
    latencies: Mutex<Vec<f64>>,
}

/// Point-in-time snapshot of the collectors, the body of
/// `GET /metrics.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Seconds since the server started.
    pub uptime_seconds: f64,
    /// All requests accepted, any endpoint.
    pub requests_total: u64,
    /// `POST /predict` requests (including shed and cached ones).
    pub predict_requests: u64,
    /// `GET /models` requests.
    pub models_requests: u64,
    /// `GET /healthz` requests.
    pub healthz_requests: u64,
    /// `GET /metrics` and `GET /metrics.json` requests.
    pub metrics_requests: u64,
    /// Requests rejected as malformed (4xx other than load shedding).
    pub bad_requests: u64,
    /// Predict requests shed with 503 because the queue was full.
    pub shed_total: u64,
    /// Predict requests answered from the response cache.
    pub cache_hits: u64,
    /// Predict requests that required model evaluation.
    pub cache_misses: u64,
    /// Cache hits over all cache lookups (0 when none yet).
    pub cache_hit_rate: f64,
    /// Predict requests answered as part of a multi-request batch.
    pub batched_requests: u64,
    /// Worker batches that panicked and were isolated (the worker thread
    /// survived). Absent in snapshots from older servers.
    #[serde(default)]
    pub worker_panics: u64,
    /// Responses that could not be written back to the client socket
    /// (client hung up early, send buffer error, ...). Absent in
    /// snapshots from older servers.
    #[serde(default)]
    pub write_errors: u64,
    /// Requests answered `504` because a deadline expired, by stage
    /// (`header`, `queue`, `predict`). Absent in snapshots from older
    /// servers.
    #[serde(default)]
    pub deadline_exceeded: BTreeMap<String, u64>,
    /// Predict requests answered by the analytic fallback while a model's
    /// circuit breaker was open. Absent in snapshots from older servers.
    #[serde(default)]
    pub degraded_total: u64,
    /// `accept()` failures on the listener socket. Absent in snapshots
    /// from older servers.
    #[serde(default)]
    pub accept_errors: u64,
    /// Artifacts the registry moved to quarantine. Absent in snapshots
    /// from older servers.
    #[serde(default)]
    pub artifact_quarantined: u64,
    /// Quarantined artifacts absolved after repair. Absent in snapshots
    /// from older servers.
    #[serde(default)]
    pub artifact_absolved: u64,
    /// Circuit-breaker transitions, by destination state (`open`,
    /// `half_open`, `closed`). Absent in snapshots from older servers.
    #[serde(default)]
    pub breaker_transitions: BTreeMap<String, u64>,
    /// Connections currently being handled. Absent in snapshots from
    /// older servers.
    #[serde(default)]
    pub inflight_connections: u64,
    /// Current prediction-queue depth.
    pub queue_depth: usize,
    /// p50/p95/p99 of recent prediction latencies, seconds (absent until
    /// the first prediction completes).
    pub latency_seconds: Option<Percentiles>,
}

impl ServerMetrics {
    /// Fresh collectors in a fresh registry, with uptime measured from
    /// now.
    pub fn new() -> Self {
        let registry = Arc::new(Registry::new());
        let endpoint_requests = registry.counter_family(
            "sms_serve_endpoint_requests_total",
            "Requests handled, by endpoint",
            &["endpoint"],
        );
        Self {
            started: Instant::now(),
            requests_total: registry.counter(
                "sms_serve_requests_total",
                "All requests accepted, any endpoint",
            ),
            endpoint_requests,
            bad_requests: registry.counter(
                "sms_serve_bad_requests_total",
                "Requests rejected as malformed (4xx other than load shedding)",
            ),
            shed_total: registry.counter(
                "sms_serve_shed_total",
                "Predict requests shed with 503 because the queue was full",
            ),
            cache_requests: registry.counter_family(
                "sms_serve_cache_requests_total",
                "Response-cache lookups, by result",
                &["result"],
            ),
            batched_requests: registry.counter(
                "sms_serve_batched_requests_total",
                "Predict requests answered as part of a multi-request batch",
            ),
            worker_panics: registry.counter(
                "sms_serve_worker_panics_total",
                "Worker batches that panicked and were isolated",
            ),
            write_errors: registry.counter(
                "sms_serve_write_errors_total",
                "Responses that could not be written back to the client socket",
            ),
            deadline_exceeded: registry.counter_family(
                "sms_serve_deadline_exceeded_total",
                "Requests answered 504 because a deadline expired, by stage",
                &["stage"],
            ),
            degraded_total: registry.counter(
                "sms_serve_degraded_total",
                "Predict requests answered by the analytic fallback (breaker open)",
            ),
            accept_errors: registry.counter(
                "sms_serve_accept_errors_total",
                "accept() failures on the listener socket",
            ),
            artifact_quarantined: registry.counter(
                "sms_serve_artifact_quarantined_total",
                "Artifacts the registry moved to quarantine",
            ),
            artifact_absolved: registry.counter(
                "sms_serve_artifact_absolved_total",
                "Quarantined artifacts absolved after repair",
            ),
            breaker_transitions: registry.counter_family(
                "sms_serve_breaker_transitions_total",
                "Circuit-breaker transitions, by destination state",
                &["to"],
            ),
            inflight_connections: registry.gauge(
                "sms_serve_inflight_connections",
                "Connections currently being handled",
            ),
            queue_depth: registry.gauge(
                "sms_serve_queue_depth",
                "Prediction-queue depth at the last scrape",
            ),
            uptime_seconds: registry.gauge(
                "sms_serve_uptime_seconds",
                "Seconds since the server started, at the last scrape",
            ),
            latency_micros: registry.histogram(
                "sms_serve_predict_latency_micros",
                "Prediction wall latency in microseconds",
            ),
            latency_count: AtomicU64::new(0),
            registry,
            latencies: Mutex::new(Vec::with_capacity(LATENCY_WINDOW)),
        }
    }

    /// The registry backing these collectors.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Count one accepted request.
    pub fn record_request(&self) {
        self.requests_total.inc();
    }

    /// Count one `POST /predict`.
    pub fn record_predict(&self) {
        self.endpoint_requests.with(&["predict"]).inc();
    }

    /// Count one `GET /models`.
    pub fn record_models(&self) {
        self.endpoint_requests.with(&["models"]).inc();
    }

    /// Count one `GET /healthz`.
    pub fn record_healthz(&self) {
        self.endpoint_requests.with(&["healthz"]).inc();
    }

    /// Count one `GET /metrics` or `GET /metrics.json`.
    pub fn record_metrics(&self) {
        self.endpoint_requests.with(&["metrics"]).inc();
    }

    /// Count one malformed/rejected request.
    pub fn record_bad_request(&self) {
        self.bad_requests.inc();
    }

    /// Count one load-shed predict request.
    pub fn record_shed(&self) {
        self.shed_total.inc();
    }

    /// Count one response-cache hit.
    pub fn record_cache_hit(&self) {
        self.cache_requests.with(&["hit"]).inc();
    }

    /// Count one response-cache miss.
    pub fn record_cache_miss(&self) {
        self.cache_requests.with(&["miss"]).inc();
    }

    /// Count predict requests that rode along in a batch behind the
    /// batch's first request.
    pub fn record_batched(&self, n: u64) {
        self.batched_requests.inc_by(n);
    }

    /// Count one isolated worker-batch panic.
    pub fn record_worker_panic(&self) {
        self.worker_panics.inc();
    }

    /// Count one failed response write.
    pub fn record_write_error(&self) {
        self.write_errors.inc();
    }

    /// Failed response writes so far.
    pub fn write_errors(&self) -> u64 {
        self.write_errors.get()
    }

    /// Count one request answered `504`, by the stage whose deadline
    /// expired (`header`, `queue`, or `predict`).
    pub fn record_deadline_exceeded(&self, stage: &str) {
        self.deadline_exceeded.with(&[stage]).inc();
    }

    /// Count one degraded (analytic-fallback) prediction response.
    pub fn record_degraded(&self) {
        self.degraded_total.inc();
    }

    /// Count one listener `accept()` failure.
    pub fn record_accept_error(&self) {
        self.accept_errors.inc();
    }

    /// Listener `accept()` failures so far.
    pub fn accept_errors(&self) -> u64 {
        self.accept_errors.get()
    }

    /// Count one circuit-breaker transition into `to` (`open`,
    /// `half_open`, or `closed`).
    pub fn record_breaker_transition(&self, to: &str) {
        self.breaker_transitions.with(&[to]).inc();
    }

    /// Update the in-flight-connections gauge.
    pub fn set_inflight(&self, n: usize) {
        self.inflight_connections.set(n as f64);
    }

    /// Mirror the registry's monotonic self-healing totals into the
    /// exported counters (called at scrape time; counters only move
    /// forward).
    pub fn sync_artifact_health(&self, quarantined_total: u64, absolved_total: u64) {
        let seen = self.artifact_quarantined.get();
        if quarantined_total > seen {
            self.artifact_quarantined.inc_by(quarantined_total - seen);
        }
        let seen = self.artifact_absolved.get();
        if absolved_total > seen {
            self.artifact_absolved.inc_by(absolved_total - seen);
        }
    }

    /// Record one completed prediction's wall latency in seconds: into
    /// the registry histogram (as microseconds) and into the bounded
    /// window that feeds the percentile estimate.
    pub fn record_latency(&self, seconds: f64) {
        self.latency_micros.observe((seconds * 1e6) as u64);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
        let mut window = lock(&self.latencies);
        if window.len() >= LATENCY_WINDOW {
            let drop = window.len() + 1 - LATENCY_WINDOW;
            window.drain(..drop);
        }
        window.push(seconds);
    }

    /// Number of latencies observed (not bounded by the window).
    pub fn latency_count(&self) -> u64 {
        self.latency_count.load(Ordering::Relaxed)
    }

    /// Refresh the scrape-time gauges and render the registry in the
    /// Prometheus text exposition format; `queue_depth` comes from the
    /// caller because the queue lives next to, not inside, the metrics.
    pub fn prometheus_text(&self, queue_depth: usize) -> String {
        self.queue_depth.set(queue_depth as f64);
        self.uptime_seconds
            .set(self.started.elapsed().as_secs_f64());
        self.registry.prometheus_text()
    }

    /// Snapshot every collector into the JSON layout; `queue_depth` as
    /// in [`ServerMetrics::prometheus_text`].
    pub fn snapshot(&self, queue_depth: usize) -> MetricsSnapshot {
        let hits = self.cache_requests.with(&["hit"]).get();
        let misses = self.cache_requests.with(&["miss"]).get();
        let lookups = hits + misses;
        let latency_seconds = percentiles(&lock(&self.latencies));
        MetricsSnapshot {
            uptime_seconds: self.started.elapsed().as_secs_f64(),
            requests_total: self.requests_total.get(),
            predict_requests: self.endpoint_requests.with(&["predict"]).get(),
            models_requests: self.endpoint_requests.with(&["models"]).get(),
            healthz_requests: self.endpoint_requests.with(&["healthz"]).get(),
            metrics_requests: self.endpoint_requests.with(&["metrics"]).get(),
            bad_requests: self.bad_requests.get(),
            shed_total: self.shed_total.get(),
            cache_hits: hits,
            cache_misses: misses,
            cache_hit_rate: if lookups > 0 {
                hits as f64 / lookups as f64
            } else {
                0.0
            },
            batched_requests: self.batched_requests.get(),
            worker_panics: self.worker_panics.get(),
            write_errors: self.write_errors.get(),
            deadline_exceeded: ["header", "queue", "predict"]
                .iter()
                .map(|s| ((*s).to_owned(), self.deadline_exceeded.with(&[s]).get()))
                .collect(),
            degraded_total: self.degraded_total.get(),
            accept_errors: self.accept_errors.get(),
            artifact_quarantined: self.artifact_quarantined.get(),
            artifact_absolved: self.artifact_absolved.get(),
            breaker_transitions: ["closed", "half_open", "open"]
                .iter()
                .map(|s| ((*s).to_owned(), self.breaker_transitions.with(&[s]).get()))
                .collect(),
            inflight_connections: self.inflight_connections.get() as u64,
            queue_depth,
            latency_seconds,
        }
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let m = ServerMetrics::new();
        m.record_request();
        m.record_request();
        m.record_predict();
        m.record_cache_hit();
        m.record_cache_miss();
        m.record_cache_miss();
        m.record_shed();
        m.record_batched(2);
        m.record_write_error();
        m.record_latency(0.010);
        m.record_latency(0.020);
        let s = m.snapshot(3);
        assert_eq!(s.requests_total, 2);
        assert_eq!(s.predict_requests, 1);
        assert_eq!(s.shed_total, 1);
        assert_eq!(s.batched_requests, 2);
        assert_eq!(s.write_errors, 1);
        assert_eq!(m.write_errors(), 1);
        assert_eq!(s.queue_depth, 3);
        assert!((s.cache_hit_rate - 1.0 / 3.0).abs() < 1e-12);
        let p = s.latency_seconds.unwrap();
        assert_eq!(p.p50, 0.010);
        assert_eq!(p.p99, 0.020);
        assert!(s.uptime_seconds >= 0.0);
        assert_eq!(m.latency_count(), 2);
    }

    #[test]
    fn empty_metrics_snapshot_is_well_formed() {
        let s = ServerMetrics::new().snapshot(0);
        assert_eq!(s.cache_hit_rate, 0.0);
        assert_eq!(s.latency_seconds, None);
        // The snapshot serializes (the /metrics.json endpoint depends on
        // it).
        let text = serde_json::to_string(&s).unwrap();
        assert!(text.contains("\"queue_depth\":0"));
    }

    #[test]
    fn latency_window_is_bounded() {
        let m = ServerMetrics::new();
        for i in 0..(LATENCY_WINDOW + 100) {
            m.record_latency(i as f64);
        }
        assert_eq!(m.latencies.lock().unwrap().len(), LATENCY_WINDOW);
        // Oldest samples were dropped: the window starts at 100.
        assert_eq!(m.latencies.lock().unwrap()[0], 100.0);
        // The registry histogram keeps every observation.
        assert_eq!(m.latency_count(), (LATENCY_WINDOW + 100) as u64);
    }

    #[test]
    fn prometheus_text_exposes_families() {
        let m = ServerMetrics::new();
        m.record_request();
        m.record_predict();
        m.record_cache_hit();
        m.record_latency(0.005);
        let text = m.prometheus_text(2);
        assert!(text.contains("# TYPE sms_serve_requests_total counter"));
        assert!(text.contains("sms_serve_requests_total 1"));
        assert!(text.contains("sms_serve_endpoint_requests_total{endpoint=\"predict\"} 1"));
        assert!(text.contains("sms_serve_cache_requests_total{result=\"hit\"} 1"));
        assert!(text.contains("sms_serve_queue_depth 2"));
        assert!(text.contains("# TYPE sms_serve_predict_latency_micros histogram"));
        assert!(text.contains("sms_serve_predict_latency_micros_count 1"));
    }

    #[test]
    fn resilience_counters_surface_in_snapshot_and_text() {
        let m = ServerMetrics::new();
        m.record_deadline_exceeded("header");
        m.record_deadline_exceeded("predict");
        m.record_deadline_exceeded("predict");
        m.record_degraded();
        m.record_accept_error();
        m.record_breaker_transition("open");
        m.record_breaker_transition("closed");
        m.set_inflight(5);
        m.sync_artifact_health(2, 1);
        // Sync is monotonic: replaying older totals never decrements.
        m.sync_artifact_health(1, 0);
        let s = m.snapshot(0);
        assert_eq!(s.deadline_exceeded["header"], 1);
        assert_eq!(s.deadline_exceeded["queue"], 0);
        assert_eq!(s.deadline_exceeded["predict"], 2);
        assert_eq!(s.degraded_total, 1);
        assert_eq!(s.accept_errors, 1);
        assert_eq!(m.accept_errors(), 1);
        assert_eq!(s.artifact_quarantined, 2);
        assert_eq!(s.artifact_absolved, 1);
        assert_eq!(s.breaker_transitions["open"], 1);
        assert_eq!(s.breaker_transitions["closed"], 1);
        assert_eq!(s.breaker_transitions["half_open"], 0);
        assert_eq!(s.inflight_connections, 5);
        let text = m.prometheus_text(0);
        assert!(text.contains("sms_serve_deadline_exceeded_total{stage=\"predict\"} 2"));
        assert!(text.contains("sms_serve_degraded_total 1"));
        assert!(text.contains("sms_serve_accept_errors_total 1"));
        assert!(text.contains("sms_serve_artifact_quarantined_total 2"));
        assert!(text.contains("sms_serve_artifact_absolved_total 1"));
        assert!(text.contains("sms_serve_breaker_transitions_total{to=\"open\"} 1"));
        assert!(text.contains("sms_serve_inflight_connections 5"));
    }

    #[test]
    fn registries_are_isolated_per_server() {
        let a = ServerMetrics::new();
        let b = ServerMetrics::new();
        a.record_request();
        assert_eq!(a.snapshot(0).requests_total, 1);
        assert_eq!(b.snapshot(0).requests_total, 0);
    }
}
