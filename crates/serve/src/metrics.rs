//! Live server metrics, served by `GET /metrics`.
//!
//! Counters follow the `sms-bench` telemetry style (relaxed atomics
//! incremented from worker threads, snapshot on demand) and latency tails
//! are computed with the same [`sms_bench::telemetry::percentiles`]
//! helper the sweep manifest uses, so `sms sweep` and `sms serve` report
//! p50/p95/p99 identically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use sms_bench::telemetry::{percentiles, Percentiles};

/// How many of the most recent prediction latencies feed the percentile
/// estimate.
pub const LATENCY_WINDOW: usize = 4096;

/// Thread-safe metric collectors. All recording methods take `&self`.
#[derive(Debug)]
pub struct ServerMetrics {
    started: Instant,
    requests_total: AtomicU64,
    predict_requests: AtomicU64,
    models_requests: AtomicU64,
    healthz_requests: AtomicU64,
    metrics_requests: AtomicU64,
    bad_requests: AtomicU64,
    shed_total: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    batched_requests: AtomicU64,
    latencies: Mutex<Vec<f64>>,
}

/// Point-in-time snapshot of the collectors, the body of `GET /metrics`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Seconds since the server started.
    pub uptime_seconds: f64,
    /// All requests accepted, any endpoint.
    pub requests_total: u64,
    /// `POST /predict` requests (including shed and cached ones).
    pub predict_requests: u64,
    /// `GET /models` requests.
    pub models_requests: u64,
    /// `GET /healthz` requests.
    pub healthz_requests: u64,
    /// `GET /metrics` requests.
    pub metrics_requests: u64,
    /// Requests rejected as malformed (4xx other than load shedding).
    pub bad_requests: u64,
    /// Predict requests shed with 503 because the queue was full.
    pub shed_total: u64,
    /// Predict requests answered from the response cache.
    pub cache_hits: u64,
    /// Predict requests that required model evaluation.
    pub cache_misses: u64,
    /// Cache hits over all cache lookups (0 when none yet).
    pub cache_hit_rate: f64,
    /// Predict requests answered as part of a multi-request batch.
    pub batched_requests: u64,
    /// Current prediction-queue depth.
    pub queue_depth: usize,
    /// p50/p95/p99 of recent prediction latencies, seconds (absent until
    /// the first prediction completes).
    pub latency_seconds: Option<Percentiles>,
}

impl ServerMetrics {
    /// Fresh collectors, with uptime measured from now.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            requests_total: AtomicU64::new(0),
            predict_requests: AtomicU64::new(0),
            models_requests: AtomicU64::new(0),
            healthz_requests: AtomicU64::new(0),
            metrics_requests: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            shed_total: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            latencies: Mutex::new(Vec::with_capacity(LATENCY_WINDOW)),
        }
    }

    /// Count one accepted request.
    pub fn record_request(&self) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one `POST /predict`.
    pub fn record_predict(&self) {
        self.predict_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one `GET /models`.
    pub fn record_models(&self) {
        self.models_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one `GET /healthz`.
    pub fn record_healthz(&self) {
        self.healthz_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one `GET /metrics`.
    pub fn record_metrics(&self) {
        self.metrics_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one malformed/rejected request.
    pub fn record_bad_request(&self) {
        self.bad_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one load-shed predict request.
    pub fn record_shed(&self) {
        self.shed_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one response-cache hit.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one response-cache miss.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Count predict requests that rode along in a batch behind the
    /// batch's first request.
    pub fn record_batched(&self, n: u64) {
        self.batched_requests.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one completed prediction's wall latency in seconds,
    /// keeping only the most recent [`LATENCY_WINDOW`] samples.
    ///
    /// # Panics
    ///
    /// Panics if the latency mutex was poisoned by a panicking thread.
    pub fn record_latency(&self, seconds: f64) {
        let mut window = self.latencies.lock().unwrap();
        if window.len() >= LATENCY_WINDOW {
            let drop = window.len() + 1 - LATENCY_WINDOW;
            window.drain(..drop);
        }
        window.push(seconds);
    }

    /// Snapshot every collector; `queue_depth` comes from the caller
    /// because the queue lives next to, not inside, the metrics.
    ///
    /// # Panics
    ///
    /// Panics if the latency mutex was poisoned by a panicking thread.
    pub fn snapshot(&self, queue_depth: usize) -> MetricsSnapshot {
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let lookups = hits + misses;
        let latency_seconds = percentiles(&self.latencies.lock().unwrap());
        MetricsSnapshot {
            uptime_seconds: self.started.elapsed().as_secs_f64(),
            requests_total: self.requests_total.load(Ordering::Relaxed),
            predict_requests: self.predict_requests.load(Ordering::Relaxed),
            models_requests: self.models_requests.load(Ordering::Relaxed),
            healthz_requests: self.healthz_requests.load(Ordering::Relaxed),
            metrics_requests: self.metrics_requests.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            shed_total: self.shed_total.load(Ordering::Relaxed),
            cache_hits: hits,
            cache_misses: misses,
            cache_hit_rate: if lookups > 0 {
                hits as f64 / lookups as f64
            } else {
                0.0
            },
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            queue_depth,
            latency_seconds,
        }
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let m = ServerMetrics::new();
        m.record_request();
        m.record_request();
        m.record_predict();
        m.record_cache_hit();
        m.record_cache_miss();
        m.record_cache_miss();
        m.record_shed();
        m.record_batched(2);
        m.record_latency(0.010);
        m.record_latency(0.020);
        let s = m.snapshot(3);
        assert_eq!(s.requests_total, 2);
        assert_eq!(s.predict_requests, 1);
        assert_eq!(s.shed_total, 1);
        assert_eq!(s.batched_requests, 2);
        assert_eq!(s.queue_depth, 3);
        assert!((s.cache_hit_rate - 1.0 / 3.0).abs() < 1e-12);
        let p = s.latency_seconds.unwrap();
        assert_eq!(p.p50, 0.010);
        assert_eq!(p.p99, 0.020);
        assert!(s.uptime_seconds >= 0.0);
    }

    #[test]
    fn empty_metrics_snapshot_is_well_formed() {
        let s = ServerMetrics::new().snapshot(0);
        assert_eq!(s.cache_hit_rate, 0.0);
        assert_eq!(s.latency_seconds, None);
        // The snapshot serializes (the /metrics endpoint depends on it).
        let text = serde_json::to_string(&s).unwrap();
        assert!(text.contains("\"queue_depth\":0"));
    }

    #[test]
    fn latency_window_is_bounded() {
        let m = ServerMetrics::new();
        for i in 0..(LATENCY_WINDOW + 100) {
            m.record_latency(i as f64);
        }
        assert_eq!(m.latencies.lock().unwrap().len(), LATENCY_WINDOW);
        // Oldest samples were dropped: the window starts at 100.
        assert_eq!(m.latencies.lock().unwrap()[0], 100.0);
    }
}
