//! Per-model circuit breaker for the prediction path.
//!
//! Consecutive prediction failures (injected faults, panics surfaced as
//! errors, deadline timeouts) trip a model's breaker so the server stops
//! hammering an unhealthy predictor and serves the cheap analytic
//! fallback instead. The classic three states:
//!
//! - **Closed** — normal operation; requests route to the ML predictor.
//! - **Open** — the predictor is presumed unhealthy; requests route to
//!   the analytic fallback (degraded responses).
//! - **Half-open** — one trial request probes the predictor; success
//!   closes the breaker, failure re-opens it.
//!
//! Every transition is driven by request counts, never wall-clock time,
//! so chaos tests replay deterministically: after `threshold`
//! consecutive failures the breaker opens, after `open_window` requests
//! served while open the next request becomes the half-open trial.
//! Callers report only primary/trial outcomes via
//! [`CircuitBreaker::on_success`] / [`CircuitBreaker::on_failure`];
//! fallback outcomes never move the state machine.

/// Breaker states, exported for metrics labels and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation: requests go to the ML predictor.
    Closed,
    /// Predictor presumed unhealthy: requests go to the fallback.
    Open,
    /// A trial request is probing the predictor.
    HalfOpen,
}

impl BreakerState {
    /// Metric-label spelling of the state.
    pub fn as_label(self) -> &'static str {
        match self {
            Self::Closed => "closed",
            Self::Open => "open",
            Self::HalfOpen => "half_open",
        }
    }
}

/// Where the breaker wants a request to go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Evaluate the ML predictor and report the outcome.
    Primary,
    /// Serve the analytic fallback; do not report an outcome.
    Fallback,
    /// Evaluate the ML predictor as the half-open trial and report the
    /// outcome.
    Trial,
}

/// A request-count-driven circuit breaker (see module docs).
#[derive(Debug)]
pub struct CircuitBreaker {
    state: BreakerState,
    /// Consecutive primary/trial failures that open the breaker.
    threshold: u32,
    /// Requests served while open before the next one becomes a trial.
    open_window: u32,
    consecutive_failures: u32,
    open_served: u32,
    trial_outstanding: bool,
    /// Requests routed while a trial was outstanding; guards against a
    /// lost trial (e.g. its worker panicked before reporting) wedging the
    /// breaker in half-open forever.
    trial_waited: u32,
}

impl CircuitBreaker {
    /// A closed breaker. `threshold` and `open_window` are clamped to at
    /// least 1.
    pub fn new(threshold: u32, open_window: u32) -> Self {
        Self {
            state: BreakerState::Closed,
            threshold: threshold.max(1),
            open_window: open_window.max(1),
            consecutive_failures: 0,
            open_served: 0,
            trial_outstanding: false,
            trial_waited: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Route the next request. Returns the route plus the new state when
    /// this call itself transitioned the breaker (open → half-open when
    /// the open window elapses).
    pub fn route(&mut self) -> (Route, Option<BreakerState>) {
        match self.state {
            BreakerState::Closed => (Route::Primary, None),
            BreakerState::Open => {
                self.open_served += 1;
                if self.open_served >= self.open_window {
                    self.state = BreakerState::HalfOpen;
                    self.trial_outstanding = true;
                    self.trial_waited = 0;
                    (Route::Trial, Some(BreakerState::HalfOpen))
                } else {
                    (Route::Fallback, None)
                }
            }
            BreakerState::HalfOpen => {
                if !self.trial_outstanding {
                    self.trial_outstanding = true;
                    self.trial_waited = 0;
                    (Route::Trial, None)
                } else if self.trial_waited >= self.open_window {
                    // The outstanding trial never reported (lost to a
                    // panic or dropped connection); issue another.
                    self.trial_waited = 0;
                    (Route::Trial, None)
                } else {
                    self.trial_waited += 1;
                    (Route::Fallback, None)
                }
            }
        }
    }

    /// Report a successful primary/trial prediction. Returns the new
    /// state on a transition (half-open trial success closes the
    /// breaker).
    pub fn on_success(&mut self) -> Option<BreakerState> {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures = 0;
                None
            }
            BreakerState::HalfOpen => {
                self.state = BreakerState::Closed;
                self.consecutive_failures = 0;
                self.open_served = 0;
                self.trial_outstanding = false;
                self.trial_waited = 0;
                Some(BreakerState::Closed)
            }
            // A straggler success from before the trip is not evidence
            // the predictor recovered; wait for the trial.
            BreakerState::Open => None,
        }
    }

    /// Report a failed primary/trial prediction. Returns the new state
    /// on a transition (threshold reached, or a failed trial re-opening
    /// the breaker).
    pub fn on_failure(&mut self) -> Option<BreakerState> {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.threshold {
                    self.state = BreakerState::Open;
                    self.open_served = 0;
                    Some(BreakerState::Open)
                } else {
                    None
                }
            }
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.open_served = 0;
                self.trial_outstanding = false;
                self.trial_waited = 0;
                Some(BreakerState::Open)
            }
            BreakerState::Open => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(3, 4);
        assert_eq!(b.route().0, Route::Primary);
        assert_eq!(b.on_failure(), None);
        assert_eq!(b.on_failure(), None);
        // A success in between resets the consecutive count.
        assert_eq!(b.on_success(), None);
        assert_eq!(b.on_failure(), None);
        assert_eq!(b.on_failure(), None);
        assert_eq!(b.on_failure(), Some(BreakerState::Open));
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn open_window_then_trial_then_close() {
        let mut b = CircuitBreaker::new(1, 3);
        assert_eq!(b.on_failure(), Some(BreakerState::Open));
        // Two fallback-served requests inside the window...
        assert_eq!(b.route(), (Route::Fallback, None));
        assert_eq!(b.route(), (Route::Fallback, None));
        // ...then the window elapses and the next request is the trial.
        assert_eq!(b.route(), (Route::Trial, Some(BreakerState::HalfOpen)));
        // Requests while the trial is outstanding fall back.
        assert_eq!(b.route(), (Route::Fallback, None));
        // Trial success closes the breaker.
        assert_eq!(b.on_success(), Some(BreakerState::Closed));
        assert_eq!(b.route().0, Route::Primary);
    }

    #[test]
    fn failed_trial_reopens() {
        let mut b = CircuitBreaker::new(1, 1);
        assert_eq!(b.on_failure(), Some(BreakerState::Open));
        assert_eq!(b.route(), (Route::Trial, Some(BreakerState::HalfOpen)));
        assert_eq!(b.on_failure(), Some(BreakerState::Open));
        // The window restarts: the next route is a fallback... with
        // open_window=1 the very next request is already the new trial.
        assert_eq!(b.route(), (Route::Trial, Some(BreakerState::HalfOpen)));
        assert_eq!(b.on_success(), Some(BreakerState::Closed));
    }

    #[test]
    fn lost_trial_is_reissued() {
        let mut b = CircuitBreaker::new(1, 2);
        b.on_failure();
        b.route(); // fallback (window 1 of 2)
        let (route, _) = b.route();
        assert_eq!(route, Route::Trial);
        // The trial never reports. After open_window more routed
        // requests, a fresh trial is issued instead of wedging.
        assert_eq!(b.route().0, Route::Fallback);
        assert_eq!(b.route().0, Route::Fallback);
        assert_eq!(b.route().0, Route::Trial);
    }

    #[test]
    fn state_labels_are_stable() {
        assert_eq!(BreakerState::Closed.as_label(), "closed");
        assert_eq!(BreakerState::Open.as_label(), "open");
        assert_eq!(BreakerState::HalfOpen.as_label(), "half_open");
    }

    #[test]
    fn zero_knobs_are_clamped() {
        let mut b = CircuitBreaker::new(0, 0);
        assert_eq!(b.on_failure(), Some(BreakerState::Open));
        assert_eq!(b.route().0, Route::Trial);
    }
}
