//! Model-checked concurrency tests for the bounded queue and circuit
//! breaker.
//!
//! Dual-mode: the `loom` CI job adds loom as a dev-dependency and
//! rebuilds with `RUSTFLAGS="--cfg loom"`, at which point every closure
//! below runs under `loom::model` and loom exhaustively explores thread
//! interleavings through the crate's `sync` seam (std mutexes swapped
//! for loom's). Without `--cfg loom` — the normal offline build, which
//! must not grow dependencies — the same closures run as a plain
//! repeated-stress test on std primitives, so the assertions themselves
//! are exercised on every `cargo test`.
//!
//! Every assertion is interleaving-safe: it must hold on *all* legal
//! schedules, which is exactly what lets loom check it exhaustively.

#![allow(clippy::unwrap_used)]

#[cfg(loom)]
use loom::{
    sync::atomic::{AtomicBool, Ordering},
    sync::{Arc, Mutex},
    thread,
};
#[cfg(not(loom))]
use std::{
    sync::atomic::{AtomicBool, Ordering},
    sync::{Arc, Mutex},
    thread,
};

use sms_serve::{BoundedQueue, BreakerState, CircuitBreaker, Route};
use std::time::Duration;

/// Run `f` under loom's model checker, or (std mode) as a stress loop.
fn model<F: Fn() + Sync + Send + 'static>(f: F) {
    #[cfg(loom)]
    loom::model(f);
    #[cfg(not(loom))]
    for _ in 0..200 {
        f();
    }
}

/// Short poll timeout: loom models the timeout as a schedule branch, so
/// the value is irrelevant there; in std stress mode it bounds how long
/// a lost-wakeup bug can stall a single iteration.
const POLL: Duration = Duration::from_millis(2);

#[test]
fn queue_full_two_racing_pushes_shed_exactly_one() {
    model(|| {
        let q = Arc::new(BoundedQueue::new(1));
        let a = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.try_push(1u32).is_ok())
        };
        let b = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.try_push(2u32).is_ok())
        };
        let (ok_a, ok_b) = (a.join().unwrap(), b.join().unwrap());
        // Capacity 1 and nobody popping: exactly one push lands and the
        // other is handed back for shedding, on every interleaving.
        assert!(ok_a ^ ok_b);
        assert_eq!(q.len(), 1);
    });
}

#[test]
fn queue_empty_wakeup_never_loses_the_item() {
    model(|| {
        let q = Arc::new(BoundedQueue::new(2));
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.try_push(7u32).unwrap())
        };
        let got = q.pop_timeout(POLL);
        producer.join().unwrap();
        match got {
            // Woken (or raced ahead of the wait): the one item arrived.
            Some(v) => assert_eq!(v, 7),
            // Timed out before the push landed: the item must still be
            // queued — a timeout may delay work but never drop it.
            None => assert_eq!(q.pop_timeout(POLL), Some(7)),
        }
    });
}

#[test]
fn queue_shutdown_interleavings_lose_no_work() {
    model(|| {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(2));
        let stop = Arc::new(AtomicBool::new(false));
        let worker = {
            let q = Arc::clone(&q);
            let stop = Arc::clone(&stop);
            // A bounded stand-in for the server worker loop: poll with a
            // timeout, re-check the shutdown flag between polls. Bounded
            // so loom's state space stays finite.
            thread::spawn(move || {
                let mut drained = 0u32;
                for _ in 0..3 {
                    if q.pop_timeout(POLL).is_some() {
                        drained += 1;
                    }
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                }
                drained
            })
        };
        // Shutdown sequence: final job, then flag, then wake everyone.
        q.try_push(9).unwrap();
        stop.store(true, Ordering::Release);
        q.notify_all();
        let drained = worker.join().unwrap();
        // Whatever the schedule, the job was either processed by the
        // worker or is still queued for a drain pass — never vanished.
        assert_eq!(drained as usize + q.len(), 1);
    });
}

#[test]
fn breaker_trip_races_route_and_honest_report() {
    model(|| {
        let b = Arc::new(Mutex::new(CircuitBreaker::new(1, 1)));
        let tripper = {
            let b = Arc::clone(&b);
            thread::spawn(move || {
                b.lock().unwrap().on_failure();
            })
        };
        // Concurrently route one request and report its real outcome.
        let route = { b.lock().unwrap().route().0 };
        match route {
            Route::Primary | Route::Trial => {
                b.lock().unwrap().on_success();
            }
            Route::Fallback => {}
        }
        tripper.join().unwrap();
        let state = b.lock().unwrap().state();
        match route {
            // Routed before the trip. A success reported before the
            // failure just resets the (empty) count; one reported after
            // is a straggler the open breaker ignores. Either way the
            // trip wins.
            Route::Primary => assert_eq!(state, BreakerState::Open),
            // Routed after the trip: with open_window=1 the request is
            // the half-open trial, and its success closes the breaker.
            Route::Trial => assert_eq!(state, BreakerState::Closed),
            Route::Fallback => unreachable!("open_window=1 has no fallback-only window"),
        }
    });
}

#[test]
fn breaker_walks_closed_open_half_open_closed_under_contention() {
    model(|| {
        let b = Arc::new(Mutex::new(CircuitBreaker::new(2, 2)));
        // A concurrent reader taking the lock mid-walk must never see a
        // state outside the machine or perturb the walk below.
        let observer = {
            let b = Arc::clone(&b);
            thread::spawn(move || {
                let g = b.lock().unwrap();
                matches!(
                    g.state(),
                    BreakerState::Closed | BreakerState::Open | BreakerState::HalfOpen
                )
            })
        };

        // CLOSED: failures below threshold keep it closed.
        assert_eq!(b.lock().unwrap().route().0, Route::Primary);
        assert_eq!(b.lock().unwrap().on_failure(), None);
        // CLOSED → OPEN at the threshold.
        assert_eq!(b.lock().unwrap().on_failure(), Some(BreakerState::Open));
        // OPEN: fallback inside the window...
        assert_eq!(b.lock().unwrap().route(), (Route::Fallback, None));
        // OPEN → HALF-OPEN: the window elapses, next request is a trial.
        assert_eq!(
            b.lock().unwrap().route(),
            (Route::Trial, Some(BreakerState::HalfOpen))
        );
        // HALF-OPEN → OPEN on a failed trial, back to HALF-OPEN after
        // another window...
        assert_eq!(b.lock().unwrap().on_failure(), Some(BreakerState::Open));
        assert_eq!(b.lock().unwrap().route(), (Route::Fallback, None));
        assert_eq!(
            b.lock().unwrap().route(),
            (Route::Trial, Some(BreakerState::HalfOpen))
        );
        // HALF-OPEN → CLOSED on a successful trial.
        assert_eq!(b.lock().unwrap().on_success(), Some(BreakerState::Closed));
        assert_eq!(b.lock().unwrap().route().0, Route::Primary);

        assert!(observer.join().unwrap());
    });
}
