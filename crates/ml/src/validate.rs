//! Train/test splitting utilities: k-fold and leave-one-out
//! cross-validation index generation, and a generic grid search.

use crate::data::{Dataset, Regressor};
use crate::metrics::mape;
use crate::rng::SplitMix64;

/// Deterministic k-fold split of `n` samples: returns `(train, test)`
/// index lists per fold. Samples are shuffled by `seed` first.
///
/// # Panics
///
/// Panics if `k < 2` or `k > n`.
pub fn k_fold(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "need at least two folds");
    assert!(k <= n, "more folds than samples");
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = SplitMix64::new(seed ^ 0x2545_F491_4F6C_DD1D);
    for i in (1..n).rev() {
        let j = rng.next_below(i + 1);
        order.swap(i, j);
    }
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let test: Vec<usize> = order
            .iter()
            .enumerate()
            .filter(|&(i, _)| i % k == f)
            .map(|(_, &s)| s)
            .collect();
        let train: Vec<usize> = order
            .iter()
            .enumerate()
            .filter(|&(i, _)| i % k != f)
            .map(|(_, &s)| s)
            .collect();
        folds.push((train, test));
    }
    folds
}

/// Leave-one-out folds for `n` samples.
pub fn leave_one_out(n: usize) -> Vec<(Vec<usize>, usize)> {
    (0..n)
        .map(|held| {
            let train: Vec<usize> = (0..n).filter(|&i| i != held).collect();
            (train, held)
        })
        .collect()
}

/// Exhaustive grid search: evaluate `fit` for every candidate parameter
/// set under k-fold cross-validation and return the `(best_params,
/// best_mape)` pair by mean absolute percentage error.
///
/// `fit` receives a candidate and a training set and must return a
/// trained regressor.
///
/// # Panics
///
/// Panics if `candidates` is empty, `k < 2`, or any fold ends up with an
/// empty training set.
pub fn grid_search<P: Clone, M: Regressor>(
    data: &Dataset,
    candidates: &[P],
    k: usize,
    seed: u64,
    mut fit: impl FnMut(&P, &Dataset) -> M,
) -> (P, f64) {
    assert!(!candidates.is_empty(), "need at least one candidate");
    let folds = k_fold(data.len(), k, seed);
    let mut best: Option<(P, f64)> = None;
    for cand in candidates {
        let mut preds = Vec::with_capacity(data.len());
        let mut truth = Vec::with_capacity(data.len());
        for (train_idx, test_idx) in &folds {
            let train = data.select(train_idx);
            let model = fit(cand, &train);
            for &t in test_idx {
                preds.push(model.predict(data.x.row(t)));
                truth.push(data.y[t]);
            }
        }
        let score = mape(&preds, &truth);
        if best.as_ref().is_none_or(|(_, s)| score < *s) {
            best = Some((cand.clone(), score));
        }
    }
    // sms-lint: allow(E1): documented panic on an empty candidate list
    best.expect("non-empty candidates")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_fold_partitions() {
        let folds = k_fold(10, 3, 1);
        assert_eq!(folds.len(), 3);
        let mut seen = [0usize; 10];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 10);
            for &t in test {
                seen[t] += 1;
            }
            for &t in test {
                assert!(!train.contains(&t), "test sample leaked into train");
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "each sample in exactly one test fold"
        );
    }

    #[test]
    fn k_fold_deterministic() {
        assert_eq!(k_fold(20, 4, 9), k_fold(20, 4, 9));
        assert_ne!(k_fold(20, 4, 9), k_fold(20, 4, 10));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn k_fold_rejects_k1() {
        let _ = k_fold(10, 1, 0);
    }

    #[test]
    fn grid_search_picks_the_better_candidate() {
        use crate::data::Matrix;
        use crate::tree::{DecisionTree, TreeParams};
        // y = 3x + 5 (strictly positive: MAPE divides by the actuals); a
        // depth-1 tree underfits badly, an unconstrained tree generalizes
        // better on this grid.
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![f64::from(i)]).collect();
        let y: Vec<f64> = (0..40).map(|i| 3.0 * f64::from(i) + 5.0).collect();
        let d = Dataset::new(Matrix::from_vecs(&rows), y);
        let candidates = [Some(1u32), None];
        let (best, score) = grid_search(&d, &candidates, 4, 7, |depth, train| {
            DecisionTree::fit(
                train,
                &TreeParams {
                    max_depth: *depth,
                    ..TreeParams::default()
                },
                0,
            )
        });
        assert_eq!(best, None, "unconstrained tree must win");
        assert!(score < 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn grid_search_rejects_empty_grid() {
        use crate::data::Matrix;
        use crate::tree::{DecisionTree, TreeParams};
        let d = Dataset::new(Matrix::from_vecs(&[vec![1.0], vec![2.0]]), vec![1.0, 2.0]);
        let none: [(); 0] = [];
        let _ = grid_search(&d, &none, 2, 0, |_, train| {
            DecisionTree::fit(train, &TreeParams::default(), 0)
        });
    }

    #[test]
    fn loo_shape() {
        let folds = leave_one_out(5);
        assert_eq!(folds.len(), 5);
        for (train, held) in folds {
            assert_eq!(train.len(), 4);
            assert!(!train.contains(&held));
        }
    }
}
