//! Dataset representation and the common regressor interface.

use serde::{Deserialize, Serialize};

/// A dense feature matrix: `rows` samples of `cols` features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Build a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self { data, rows, cols }
    }

    /// Build from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths.
    pub fn from_vecs(rows: &[Vec<f64>]) -> Self {
        let cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            data,
            rows: rows.len(),
            cols,
        }
    }

    /// Number of samples.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of features.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterate over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Select a subset of rows by index (with repetition allowed).
    pub fn select(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            data,
            rows: indices.len(),
            cols: self.cols,
        }
    }
}

/// A labelled regression dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature matrix.
    pub x: Matrix,
    /// Targets, one per row of `x`.
    pub y: Vec<f64>,
}

impl Dataset {
    /// Bundle features and targets.
    ///
    /// # Panics
    ///
    /// Panics if the target count differs from the row count.
    pub fn new(x: Matrix, y: Vec<f64>) -> Self {
        assert_eq!(x.rows(), y.len(), "row/target count mismatch");
        Self { x, y }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Select a subset of samples by index (with repetition allowed).
    pub fn select(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select(indices),
            y: indices.iter().map(|&i| self.y[i]).collect(),
        }
    }
}

/// A trained regression model.
pub trait Regressor {
    /// Predict the target for one feature vector.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the feature count differs from the
    /// training data.
    fn predict(&self, x: &[f64]) -> f64;

    /// Predict for every row of a matrix.
    fn predict_batch(&self, x: &Matrix) -> Vec<f64> {
        x.iter_rows().map(|r| self.predict(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_shape_and_rows() {
        let m = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matrix_rejects_bad_shape() {
        let _ = Matrix::from_rows(2, 2, vec![1.0]);
    }

    #[test]
    fn from_vecs_round_trip() {
        let m = Matrix::from_vecs(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        let rows: Vec<&[f64]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn select_with_repetition() {
        let m = Matrix::from_vecs(&[vec![1.0], vec![2.0], vec![3.0]]);
        let s = m.select(&[2, 0, 2]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(0), &[3.0]);
        assert_eq!(s.row(2), &[3.0]);
    }

    #[test]
    fn dataset_select() {
        let d = Dataset::new(
            Matrix::from_vecs(&[vec![1.0], vec![2.0], vec![3.0]]),
            vec![10.0, 20.0, 30.0],
        );
        let s = d.select(&[1, 1]);
        assert_eq!(s.y, vec![20.0, 20.0]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn dataset_rejects_mismatch() {
        let _ = Dataset::new(Matrix::from_vecs(&[vec![1.0]]), vec![1.0, 2.0]);
    }
}
