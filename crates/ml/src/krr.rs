//! Kernel ridge regression (RBF kernel), solved in closed form by
//! Cholesky decomposition of the regularized kernel matrix.
//!
//! Not used by the paper — included as a fourth model family for
//! comparison studies: KRR shares the SVR's RBF hypothesis space but
//! replaces the ε-insensitive loss + box constraints with a squared
//! loss + L2 penalty, so differences between the two isolate the effect
//! of the loss function.

use serde::{Deserialize, Serialize};

use crate::data::{Dataset, Matrix, Regressor};

/// KRR hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KrrParams {
    /// L2 regularization strength (ridge `alpha`).
    pub alpha: f64,
    /// RBF width; `None` = `1 / (n_features · Var(X))` (scikit-learn's
    /// `gamma="scale"`).
    pub gamma: Option<f64>,
}

impl Default for KrrParams {
    fn default() -> Self {
        Self {
            alpha: 1.0,
            gamma: None,
        }
    }
}

/// A trained kernel ridge regressor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelRidge {
    x: Matrix,
    dual: Vec<f64>,
    gamma: f64,
    num_features: usize,
}

fn rbf(gamma: f64, a: &[f64], b: &[f64]) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (-gamma * d2).exp()
}

fn scale_gamma(x: &Matrix) -> f64 {
    let n = (x.rows() * x.cols()) as f64;
    if n == 0.0 {
        return 1.0;
    }
    let mean: f64 = x.iter_rows().flatten().sum::<f64>() / n;
    let var: f64 = x
        .iter_rows()
        .flatten()
        .map(|v| (v - mean) * (v - mean))
        .sum::<f64>()
        / n;
    if var > 1e-12 {
        1.0 / (x.cols() as f64 * var)
    } else {
        1.0
    }
}

/// In-place Cholesky factorization `A = L·Lᵀ` of a symmetric positive
/// definite matrix stored row-major; returns `false` if the matrix is not
/// positive definite.
fn cholesky(a: &mut [f64], n: usize) -> bool {
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= a[i * n + k] * a[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return false;
                }
                a[i * n + j] = sum.sqrt();
            } else {
                a[i * n + j] = sum / a[j * n + j];
            }
        }
        for j in (i + 1)..n {
            a[i * n + j] = 0.0;
        }
    }
    true
}

/// Solve `L·Lᵀ x = b` given the Cholesky factor `L`.
fn cholesky_solve(l: &[f64], n: usize, b: &[f64]) -> Vec<f64> {
    // Forward substitution: L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    // Back substitution: Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    x
}

impl KernelRidge {
    /// Fit on the dataset by solving `(K + αI) c = y`.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `alpha <= 0` (the regularized
    /// kernel matrix must be positive definite).
    pub fn fit(data: &Dataset, params: &KrrParams) -> Self {
        assert!(!data.is_empty(), "cannot fit KRR on an empty dataset");
        assert!(params.alpha > 0.0, "alpha must be positive");
        let n = data.len();
        let gamma = params.gamma.unwrap_or_else(|| scale_gamma(&data.x));

        let mut k = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i..n {
                let v = rbf(gamma, data.x.row(i), data.x.row(j));
                k[i * n + j] = v;
                k[j * n + i] = v;
            }
            k[i * n + i] += params.alpha;
        }
        let ok = cholesky(&mut k, n);
        assert!(ok, "regularized kernel matrix must be positive definite");
        let dual = cholesky_solve(&k, n, &data.y);

        Self {
            x: data.x.clone(),
            dual,
            gamma,
            num_features: data.x.cols(),
        }
    }

    /// The RBF width used.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }
}

impl Regressor for KernelRidge {
    fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_features, "feature count mismatch");
        self.dual
            .iter()
            .zip(self.x.iter_rows())
            .map(|(c, row)| c * rbf(self.gamma, row, x))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize, f: impl Fn(f64) -> f64) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 / n as f64 * 4.0 - 2.0])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| f(r[0])).collect();
        Dataset::new(Matrix::from_vecs(&rows), y)
    }

    #[test]
    fn interpolates_smooth_functions() {
        let d = grid(60, |x| (1.3 * x).sin() + 0.5);
        let m = KernelRidge::fit(
            &d,
            &KrrParams {
                alpha: 1e-3,
                gamma: Some(2.0),
            },
        );
        let mae: f64 = (0..30)
            .map(|i| {
                let x = -1.8 + i as f64 * 0.12;
                (m.predict(&[x]) - ((1.3 * x).sin() + 0.5)).abs()
            })
            .sum::<f64>()
            / 30.0;
        assert!(mae < 0.02, "mae = {mae}");
    }

    #[test]
    fn stronger_regularization_shrinks_predictions() {
        let d = grid(30, |x| 5.0 * x);
        let weak = KernelRidge::fit(
            &d,
            &KrrParams {
                alpha: 1e-4,
                gamma: Some(1.0),
            },
        );
        let strong = KernelRidge::fit(
            &d,
            &KrrParams {
                alpha: 100.0,
                gamma: Some(1.0),
            },
        );
        // At a training point, the weak model fits closely; the strong one
        // is pulled toward zero.
        let target = 5.0;
        let e_weak = (weak.predict(&[1.0]) - target).abs();
        let e_strong = (strong.predict(&[1.0]) - target).abs();
        assert!(e_weak < e_strong);
        assert!(strong.predict(&[1.0]).abs() < target.abs());
    }

    #[test]
    fn cholesky_round_trip() {
        // A small SPD system with a known solution.
        let mut a = vec![4.0, 2.0, 2.0, 3.0];
        assert!(cholesky(&mut a, 2));
        let x = cholesky_solve(&a, 2, &[8.0, 7.0]);
        // [4 2; 2 3] x = [8; 7] -> x = [1.25, 1.5].
        assert!((x[0] - 1.25).abs() < 1e-12);
        assert!((x[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let mut a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        assert!(!cholesky(&mut a, 2));
    }

    #[test]
    fn multivariate_fit() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for a in 0..8 {
            for b in 0..8 {
                let (xa, xb) = (a as f64 / 4.0 - 1.0, b as f64 / 4.0 - 1.0);
                rows.push(vec![xa, xb]);
                y.push(2.0 * xa - xb + 1.0);
            }
        }
        let d = Dataset::new(Matrix::from_vecs(&rows), y);
        let m = KernelRidge::fit(
            &d,
            &KrrParams {
                alpha: 1e-3,
                gamma: None,
            },
        );
        let err = (m.predict(&[0.3, -0.2]) - (0.6 + 0.2 + 1.0)).abs();
        assert!(err < 0.1, "err = {err}");
    }

    #[test]
    fn deterministic() {
        let d = grid(25, |x| x * x);
        let a = KernelRidge::fit(&d, &KrrParams::default());
        let b = KernelRidge::fit(&d, &KrrParams::default());
        assert_eq!(a.predict(&[0.4]), b.predict(&[0.4]));
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn zero_alpha_rejected() {
        let d = grid(5, |x| x);
        let _ = KernelRidge::fit(
            &d,
            &KrrParams {
                alpha: 0.0,
                gamma: None,
            },
        );
    }
}
