//! Random-forest regressor: bagged CART trees with optional per-split
//! feature subsampling, predictions averaged across the ensemble
//! (Breiman 2001; scikit-learn's `RandomForestRegressor`).

use serde::{Deserialize, Serialize};

use crate::data::{Dataset, Regressor};
use crate::rng::SplitMix64;
use crate::tree::{DecisionTree, TreeParams};

/// Forest hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForestParams {
    /// Number of trees in the ensemble.
    pub num_trees: usize,
    /// Per-tree parameters (including `max_features` for decorrelation).
    pub tree: TreeParams,
    /// Whether each tree trains on a bootstrap resample of the data.
    pub bootstrap: bool,
}

impl Default for ForestParams {
    fn default() -> Self {
        Self {
            num_trees: 100,
            tree: TreeParams::default(),
            bootstrap: true,
        }
    }
}

/// A trained random forest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Fit the forest.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `num_trees` is zero.
    pub fn fit(data: &Dataset, params: &ForestParams, seed: u64) -> Self {
        assert!(!data.is_empty(), "cannot fit a forest on an empty dataset");
        assert!(params.num_trees > 0, "forest needs at least one tree");
        let mut rng = SplitMix64::new(seed ^ 0x51_7C_C1_B7_27_22_0A_95);
        let n = data.len();
        let trees = (0..params.num_trees)
            .map(|t| {
                let tree_seed = rng.next_u64();
                if params.bootstrap {
                    let indices: Vec<usize> = (0..n).map(|_| rng.next_below(n)).collect();
                    let sample = data.select(&indices);
                    DecisionTree::fit(&sample, &params.tree, tree_seed)
                } else {
                    DecisionTree::fit(data, &params.tree, tree_seed.wrapping_add(t as u64))
                }
            })
            .collect();
        Self { trees }
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Regressor for RandomForest {
    fn predict(&self, x: &[f64]) -> f64 {
        let sum: f64 = self.trees.iter().map(|t| t.predict(x)).sum();
        sum / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Matrix;

    fn noisy_line(n: usize) -> Dataset {
        // y = 3x with deterministic "noise".
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| 3.0 * i as f64 / 10.0 + ((i * 37 % 11) as f64 - 5.0) * 0.05)
            .collect();
        Dataset::new(Matrix::from_vecs(&rows), y)
    }

    #[test]
    fn forest_fits_and_predicts() {
        let d = noisy_line(100);
        let f = RandomForest::fit(
            &d,
            &ForestParams {
                num_trees: 30,
                ..ForestParams::default()
            },
            7,
        );
        assert_eq!(f.num_trees(), 30);
        let err = (f.predict(&[5.0]) - 15.0).abs();
        assert!(err < 1.0, "err = {err}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let d = noisy_line(50);
        let p = ForestParams {
            num_trees: 10,
            ..ForestParams::default()
        };
        let a = RandomForest::fit(&d, &p, 3);
        let b = RandomForest::fit(&d, &p, 3);
        for x in [0.0, 1.0, 2.5, 4.9] {
            assert_eq!(a.predict(&[x]), b.predict(&[x]));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let d = noisy_line(50);
        let p = ForestParams {
            num_trees: 5,
            ..ForestParams::default()
        };
        let a = RandomForest::fit(&d, &p, 3);
        let b = RandomForest::fit(&d, &p, 4);
        let differs = [0.3, 1.7, 3.3]
            .iter()
            .any(|&x| a.predict(&[x]) != b.predict(&[x]));
        assert!(differs);
    }

    #[test]
    fn averaging_smooths_single_tree_variance() {
        let d = noisy_line(100);
        let tree = DecisionTree::fit(&d, &TreeParams::default(), 0);
        let forest = RandomForest::fit(
            &d,
            &ForestParams {
                num_trees: 50,
                ..ForestParams::default()
            },
            0,
        );
        // Out-of-grid points: the forest should track the underlying line
        // at least as well on average.
        let eval = |m: &dyn Regressor| -> f64 {
            (0..20)
                .map(|i| {
                    let x = 0.05 + i as f64 / 2.1;
                    (m.predict(&[x]) - 3.0 * x).abs()
                })
                .sum::<f64>()
                / 20.0
        };
        let ft = eval(&forest);
        let tt = eval(&tree);
        assert!(ft <= tt + 0.05, "forest {ft} vs tree {tt}");
    }

    #[test]
    fn feature_subsampling_trains() {
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![i as f64, (i % 7) as f64, (i % 3) as f64])
            .collect();
        let y: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let d = Dataset::new(Matrix::from_vecs(&rows), y);
        let f = RandomForest::fit(
            &d,
            &ForestParams {
                num_trees: 20,
                tree: TreeParams {
                    max_features: Some(1),
                    ..TreeParams::default()
                },
                bootstrap: true,
            },
            9,
        );
        let err = (f.predict(&[30.0, 2.0, 0.0]) - 30.0).abs();
        assert!(err < 6.0, "err = {err}");
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_rejected() {
        let d = noisy_line(10);
        let _ = RandomForest::fit(
            &d,
            &ForestParams {
                num_trees: 0,
                ..ForestParams::default()
            },
            0,
        );
    }
}
