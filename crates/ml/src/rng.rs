//! Deterministic PRNG for bootstrap sampling and feature subsampling.
//!
//! SplitMix64, kept crate-local so model training is reproducible and
//! independent of external RNG crate versions.

/// SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be non-zero");
        ((u128::from(self.next_u64()) * bound as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(5);
        let mut b = SplitMix64::new(5);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounded() {
        let mut r = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
        }
    }
}
