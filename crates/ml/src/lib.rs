//! # sms-ml — machine learning for scale-model extrapolation
//!
//! From-scratch implementations of the models the paper trains with
//! scikit-learn v1.0.1:
//!
//! * [`tree`] — CART regression trees (`DecisionTreeRegressor`),
//! * [`forest`] — bagged random forests (`RandomForestRegressor`),
//! * [`svr`] — ε-SVR with an RBF kernel trained by SMO (`SVR`),
//! * [`krr`] — kernel ridge regression (beyond the paper, for loss-function
//!   comparisons),
//! * [`fit`] — least-squares linear / power / logarithmic curve fits for
//!   core-count extrapolation,
//! * [`scale`] — feature standardization,
//! * [`metrics`] — the paper's `|pred − actual| / actual` error metric and
//!   friends,
//! * [`validate`] — k-fold and leave-one-out index splitting.
//!
//! # Example
//!
//! ```
//! use sms_ml::data::{Dataset, Matrix, Regressor};
//! use sms_ml::svr::{Svr, SvrParams};
//!
//! let x = Matrix::from_vecs(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
//! let y = vec![1.0, 3.0, 5.0, 7.0];
//! let model = Svr::fit(&Dataset::new(x, y), &SvrParams { c: 10.0, ..SvrParams::default() });
//! let pred = model.predict(&[1.5]);
//! assert!((pred - 4.0).abs() < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod data;
pub mod fit;
pub mod forest;
pub mod krr;
pub mod metrics;
pub mod rng;
pub mod scale;
pub mod svr;
pub mod tree;
pub mod validate;

pub use data::{Dataset, Matrix, Regressor};
pub use fit::{fit_curve, CurveModel, FittedCurve};
pub use forest::{ForestParams, RandomForest};
pub use krr::{KernelRidge, KrrParams};
pub use scale::StandardScaler;
pub use svr::{Svr, SvrParams};
pub use tree::{DecisionTree, TreeParams};
