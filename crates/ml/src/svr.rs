//! ε-support-vector regression with an RBF kernel, trained by sequential
//! minimal optimization (Smola & Schölkopf 2004; LibSVM's ε-SVR).
//!
//! The dual is solved over the net coefficients `β_i = α_i − α*_i`:
//!
//! ```text
//! min_β  ½ βᵀKβ − yᵀβ + ε‖β‖₁   s.t.  Σ_i β_i = 0,  |β_i| ≤ C
//! ```
//!
//! Each SMO step picks a maximal-violating pair `(i, j)` — the best
//! coordinate to increase and the best to decrease (preserving `Σβ = 0`) —
//! and solves the one-dimensional subproblem exactly (a piecewise
//! quadratic with breakpoints where `β_i + δ` or `β_j − δ` change sign).
//! The prediction is `f(x) = Σ_i β_i K(x_i, x) + b`.

use serde::{Deserialize, Serialize};

use crate::data::{Dataset, Matrix, Regressor};

/// SVR hyper-parameters (scikit-learn defaults: `C=1`, `epsilon=0.1`,
/// `gamma="scale"`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvrParams {
    /// Regularization strength (box constraint on `|β_i|`).
    pub c: f64,
    /// Width of the ε-insensitive tube.
    pub epsilon: f64,
    /// RBF kernel width; `None` = `1 / (n_features · Var(X))`, matching
    /// scikit-learn's `gamma="scale"`.
    pub gamma: Option<f64>,
    /// KKT-violation tolerance for convergence.
    pub tol: f64,
    /// Hard cap on SMO pair updates.
    pub max_iter: usize,
}

impl Default for SvrParams {
    fn default() -> Self {
        Self {
            c: 1.0,
            epsilon: 0.1,
            gamma: None,
            tol: 1e-3,
            max_iter: 100_000,
        }
    }
}

/// A trained ε-SVR model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Svr {
    support_x: Matrix,
    beta: Vec<f64>,
    bias: f64,
    gamma: f64,
    num_features: usize,
}

fn rbf(gamma: f64, a: &[f64], b: &[f64]) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (-gamma * d2).exp()
}

/// `gamma = 1 / (n_features * Var(X))` over all matrix entries, as
/// scikit-learn's `gamma="scale"`.
fn scale_gamma(x: &Matrix) -> f64 {
    let n = (x.rows() * x.cols()) as f64;
    if n == 0.0 {
        return 1.0;
    }
    let mean: f64 = x.iter_rows().flatten().sum::<f64>() / n;
    let var: f64 = x
        .iter_rows()
        .flatten()
        .map(|v| (v - mean) * (v - mean))
        .sum::<f64>()
        / n;
    if var > 1e-12 {
        1.0 / (x.cols() as f64 * var)
    } else {
        1.0
    }
}

impl Svr {
    /// Fit the model.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or hyper-parameters are invalid
    /// (`c <= 0`, `epsilon < 0`).
    pub fn fit(data: &Dataset, params: &SvrParams) -> Self {
        assert!(!data.is_empty(), "cannot fit SVR on an empty dataset");
        assert!(params.c > 0.0, "C must be positive");
        assert!(params.epsilon >= 0.0, "epsilon must be non-negative");

        let n = data.len();
        let gamma = params.gamma.unwrap_or_else(|| scale_gamma(&data.x));
        let c = params.c;
        let eps = params.epsilon;

        // Dense kernel matrix; training sets in the extrapolation pipeline
        // are a few hundred points, so O(n^2) memory is fine.
        let mut kernel = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i..n {
                let k = rbf(gamma, data.x.row(i), data.x.row(j));
                kernel[i * n + j] = k;
                kernel[j * n + i] = k;
            }
        }

        let mut beta = vec![0.0f64; n];
        // F_i = (Kβ)_i − y_i, maintained incrementally.
        let mut f: Vec<f64> = data.y.iter().map(|&y| -y).collect();

        for _ in 0..params.max_iter {
            // Select the maximal violating pair: i to increase, j to
            // decrease. The directional derivative of the objective for
            // increasing β_i is F_i + ε·s⁺ (s⁺ = sign entering from β_i),
            // for decreasing β_j it is −F_j + ε·s⁻.
            let mut best_up: Option<(usize, f64)> = None;
            let mut best_down: Option<(usize, f64)> = None;
            for k in 0..n {
                if beta[k] < c {
                    let d = f[k] + if beta[k] >= 0.0 { eps } else { -eps };
                    if best_up.is_none_or(|(_, bd)| d < bd) {
                        best_up = Some((k, d));
                    }
                }
                if beta[k] > -c {
                    let d = -f[k] + if beta[k] > 0.0 { -eps } else { eps };
                    if best_down.is_none_or(|(_, bd)| d < bd) {
                        best_down = Some((k, d));
                    }
                }
            }
            let (Some((i, di)), Some((j, dj))) = (best_up, best_down) else {
                break;
            };
            if i == j || di + dj > -params.tol {
                break; // KKT-satisfied within tolerance
            }

            // One-dimensional subproblem over δ > 0:
            //   g(δ) = ½ηδ² + (F_i − F_j)δ + ε(|β_i+δ| + |β_j−δ|) + const
            let eta = kernel[i * n + i] + kernel[j * n + j] - 2.0 * kernel[i * n + j];
            let delta_max = (c - beta[i]).min(beta[j] + c);
            debug_assert!(delta_max > 0.0);
            let lin = f[i] - f[j];

            // Candidate minimizers: per-piece stationary points, the
            // breakpoints, and the box edge.
            let mut candidates: Vec<f64> = Vec::with_capacity(5);
            let bp1 = -beta[i]; // β_i + δ crosses zero
            let bp2 = beta[j]; // β_j − δ crosses zero
            for bp in [bp1, bp2] {
                if bp > 0.0 && bp < delta_max {
                    candidates.push(bp);
                }
            }
            candidates.push(delta_max);
            if eta > 1e-12 {
                // Stationary point of each sign combination.
                for (si, sj) in [(1.0, 1.0), (1.0, -1.0), (-1.0, 1.0), (-1.0, -1.0)] {
                    // dg/dδ = ηδ + lin + ε·si − ε·sj = 0
                    let d = -(lin + eps * (si - sj)) / eta;
                    if d > 0.0
                        && d < delta_max
                        && (beta[i] + d).signum() * si >= 0.0
                        && (beta[j] - d).signum() * sj >= 0.0
                    {
                        candidates.push(d);
                    }
                }
            }

            let g = |d: f64| {
                0.5 * eta * d * d + lin * d + eps * ((beta[i] + d).abs() + (beta[j] - d).abs())
            };
            let base = eps * (beta[i].abs() + beta[j].abs());
            let mut best_d = 0.0;
            let mut best_g = base; // g(0)
            for &d in &candidates {
                let v = g(d);
                if v < best_g - 1e-15 {
                    best_g = v;
                    best_d = d;
                }
            }
            if best_d <= 0.0 {
                break; // numerically stuck; KKT near-satisfied
            }

            beta[i] += best_d;
            beta[j] -= best_d;
            for k in 0..n {
                f[k] += best_d * (kernel[i * n + k] - kernel[j * n + k]);
            }
        }

        // Bias from free support vectors: for 0 < β_i < C the point sits on
        // the upper tube edge (y − f = +ε); for −C < β_i < 0 on the lower.
        let margin = 1e-8 * c;
        let mut b_sum = 0.0;
        let mut b_cnt = 0usize;
        for k in 0..n {
            if beta[k] > margin && beta[k] < c - margin {
                b_sum += data.y[k] - (f[k] + data.y[k]) - eps; // y − (Kβ) − ε
                b_cnt += 1;
            } else if beta[k] < -margin && beta[k] > -c + margin {
                b_sum += data.y[k] - (f[k] + data.y[k]) + eps;
                b_cnt += 1;
            }
        }
        let bias = if b_cnt > 0 {
            b_sum / b_cnt as f64
        } else {
            // No free SVs: use the feasibility interval midpoint over all
            // points: lo ≤ b ≤ hi with b ∈ [y_i − Kβ_i − ε, y_i − Kβ_i + ε]
            // for interior points; approximate with the mean residual.
            let mean_resid: f64 =
                (0..n).map(|k| data.y[k] - (f[k] + data.y[k])).sum::<f64>() / n as f64;
            mean_resid
        };

        // Keep only support vectors for prediction.
        let sv: Vec<usize> = (0..n).filter(|&k| beta[k].abs() > margin).collect();
        let support_x = data.x.select(&sv);
        let beta_sv: Vec<f64> = sv.iter().map(|&k| beta[k]).collect();

        Self {
            support_x,
            beta: beta_sv,
            bias,
            gamma,
            num_features: data.x.cols(),
        }
    }

    /// Number of support vectors.
    pub fn num_support_vectors(&self) -> usize {
        self.beta.len()
    }

    /// The (possibly derived) RBF width used.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }
}

impl Regressor for Svr {
    fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_features, "feature count mismatch");
        let mut acc = self.bias;
        for (b, sv) in self.beta.iter().zip(self.support_x.iter_rows()) {
            acc += b * rbf(self.gamma, sv, x);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize, f: impl Fn(f64) -> f64) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 / n as f64 * 4.0 - 2.0])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| f(r[0])).collect();
        Dataset::new(Matrix::from_vecs(&rows), y)
    }

    #[test]
    fn fits_linear_function() {
        let d = grid(60, |x| 2.0 * x + 1.0);
        let m = Svr::fit(
            &d,
            &SvrParams {
                c: 10.0,
                epsilon: 0.05,
                ..SvrParams::default()
            },
        );
        for i in 0..20 {
            let x = -1.8 + i as f64 * 0.18;
            let err = (m.predict(&[x]) - (2.0 * x + 1.0)).abs();
            assert!(err < 0.25, "x={x} err={err}");
        }
    }

    #[test]
    fn fits_nonlinear_function() {
        let d = grid(100, |x| (1.5 * x).sin());
        let m = Svr::fit(
            &d,
            &SvrParams {
                c: 10.0,
                epsilon: 0.02,
                gamma: Some(1.0),
                ..SvrParams::default()
            },
        );
        let mae: f64 = (0..40)
            .map(|i| {
                let x = -1.9 + i as f64 * 0.095;
                (m.predict(&[x]) - (1.5 * x).sin()).abs()
            })
            .sum::<f64>()
            / 40.0;
        assert!(mae < 0.06, "mae = {mae}");
    }

    #[test]
    fn epsilon_tube_ignores_small_variation() {
        // All targets within ±0.05 of 1.0 and epsilon = 0.2: no support
        // vectors needed, prediction collapses to the bias.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20)
            .map(|i| 1.0 + 0.05 * ((i % 2) as f64 - 0.5))
            .collect();
        let d = Dataset::new(Matrix::from_vecs(&rows), y);
        let m = Svr::fit(
            &d,
            &SvrParams {
                epsilon: 0.2,
                ..SvrParams::default()
            },
        );
        assert_eq!(m.num_support_vectors(), 0);
        assert!((m.predict(&[10.0]) - 1.0).abs() < 0.1);
    }

    #[test]
    fn c_bounds_coefficients() {
        let d = grid(30, |x| 100.0 * x); // steep: wants large beta
        let m = Svr::fit(
            &d,
            &SvrParams {
                c: 0.5,
                epsilon: 0.0,
                gamma: Some(0.5),
                ..SvrParams::default()
            },
        );
        for b in &m.beta {
            assert!(b.abs() <= 0.5 + 1e-9, "beta {b} exceeds C");
        }
    }

    #[test]
    fn beta_sums_to_zero() {
        let d = grid(50, |x| x * x - 1.0);
        let m = Svr::fit(
            &d,
            &SvrParams {
                c: 5.0,
                epsilon: 0.01,
                ..SvrParams::default()
            },
        );
        let sum: f64 = m.beta.iter().sum();
        assert!(sum.abs() < 1e-9, "sum(beta) = {sum}");
    }

    #[test]
    fn multivariate_fit() {
        // y = x0 + 2*x1 over a small 2-D grid.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for a in 0..8 {
            for b in 0..8 {
                let (xa, xb) = (a as f64 / 4.0 - 1.0, b as f64 / 4.0 - 1.0);
                rows.push(vec![xa, xb]);
                y.push(xa + 2.0 * xb);
            }
        }
        let d = Dataset::new(Matrix::from_vecs(&rows), y);
        let m = Svr::fit(
            &d,
            &SvrParams {
                c: 10.0,
                epsilon: 0.02,
                ..SvrParams::default()
            },
        );
        let err = (m.predict(&[0.3, -0.5]) - (0.3 - 1.0)).abs();
        assert!(err < 0.15, "err = {err}");
    }

    #[test]
    fn scale_gamma_matches_definition() {
        let x = Matrix::from_vecs(&[vec![0.0, 0.0], vec![2.0, 2.0]]);
        // mean 1, var 1 over all entries; 2 features -> gamma = 0.5.
        assert!((scale_gamma(&x) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_training() {
        let d = grid(40, |x| x.exp() / 3.0);
        let p = SvrParams {
            c: 3.0,
            ..SvrParams::default()
        };
        let a = Svr::fit(&d, &p);
        let b = Svr::fit(&d, &p);
        assert_eq!(a.predict(&[0.7]), b.predict(&[0.7]));
    }

    #[test]
    #[should_panic(expected = "C must be positive")]
    fn invalid_c_rejected() {
        let d = grid(5, |x| x);
        let _ = Svr::fit(
            &d,
            &SvrParams {
                c: 0.0,
                ..SvrParams::default()
            },
        );
    }

    #[test]
    fn extrapolation_is_bounded() {
        // RBF kernels decay to the bias far from training data: prediction
        // at a distant point stays finite and near the bias.
        let d = grid(30, |x| x);
        let m = Svr::fit(&d, &SvrParams::default());
        let far = m.predict(&[1000.0]);
        assert!(far.is_finite());
        assert!((far - m.bias).abs() < 1e-6);
    }
}
