//! Regression accuracy metrics, including the paper's prediction-error
//! metric `|predicted − actual| / actual`.

/// Absolute relative error `|pred − actual| / actual` (paper §V).
///
/// # Panics
///
/// Panics if `actual` is zero.
pub fn prediction_error(predicted: f64, actual: f64) -> f64 {
    assert!(actual != 0.0, "actual value must be non-zero");
    ((predicted - actual) / actual).abs()
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics on length mismatch or empty input.
pub fn mae(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len());
    assert!(!pred.is_empty());
    pred.iter()
        .zip(actual)
        .map(|(p, a)| (p - a).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Mean absolute percentage error (fraction, not percent).
///
/// # Panics
///
/// Panics on length mismatch, empty input, or a zero actual.
pub fn mape(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len());
    assert!(!pred.is_empty());
    pred.iter()
        .zip(actual)
        .map(|(&p, &a)| prediction_error(p, a))
        .sum::<f64>()
        / pred.len() as f64
}

/// Maximum absolute percentage error (fraction).
///
/// # Panics
///
/// Panics on length mismatch, empty input, or a zero actual.
pub fn max_ape(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len());
    assert!(!pred.is_empty());
    pred.iter()
        .zip(actual)
        .map(|(&p, &a)| prediction_error(p, a))
        .fold(0.0, f64::max)
}

/// Coefficient of determination R².
///
/// Returns 1.0 for a perfect fit; can be negative for fits worse than the
/// mean predictor. Returns 0.0 when the actuals are constant and exactly
/// matched, following scikit-learn's convention of guarding the 0/0 case.
///
/// # Panics
///
/// Panics on length mismatch or empty input.
pub fn r2(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len());
    assert!(!pred.is_empty());
    let mean: f64 = actual.iter().sum::<f64>() / actual.len() as f64;
    let ss_tot: f64 = actual.iter().map(|a| (a - mean) * (a - mean)).sum();
    let ss_res: f64 = pred
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a) * (p - a))
        .sum();
    if ss_tot < 1e-15 {
        if ss_res < 1e-15 {
            0.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_error_matches_paper_metric() {
        assert!((prediction_error(1.2, 1.0) - 0.2).abs() < 1e-12);
        assert!((prediction_error(0.8, 1.0) - 0.2).abs() < 1e-12);
        assert_eq!(prediction_error(2.0, 2.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn prediction_error_zero_actual_panics() {
        let _ = prediction_error(1.0, 0.0);
    }

    #[test]
    fn mae_and_mape() {
        let p = [1.0, 2.0, 3.0];
        let a = [2.0, 2.0, 2.0];
        assert!((mae(&p, &a) - 2.0 / 3.0).abs() < 1e-12);
        assert!((mape(&p, &a) - (0.5 + 0.0 + 0.5) / 3.0).abs() < 1e-12);
        assert!((max_ape(&p, &a) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn r2_perfect_and_mean() {
        let a = [1.0, 2.0, 3.0];
        assert!((r2(&a, &a) - 1.0).abs() < 1e-12);
        let mean_pred = [2.0, 2.0, 2.0];
        assert!(r2(&mean_pred, &a).abs() < 1e-12);
    }

    #[test]
    fn r2_negative_for_bad_fit() {
        let a = [1.0, 2.0, 3.0];
        let p = [3.0, 3.0, 0.0];
        assert!(r2(&p, &a) < 0.0);
    }

    #[test]
    fn r2_constant_actuals() {
        assert_eq!(r2(&[5.0, 5.0], &[5.0, 5.0]), 0.0);
        assert_eq!(r2(&[5.0, 6.0], &[5.0, 5.0]), f64::NEG_INFINITY);
    }
}
