//! CART regression tree (Breiman et al.), as in scikit-learn's
//! `DecisionTreeRegressor`: binary splits chosen by maximal variance
//! reduction (equivalently, minimal summed squared error).

use serde::{Deserialize, Serialize};

use crate::data::{Dataset, Regressor};
use crate::rng::SplitMix64;

/// Tree hyper-parameters, mirroring scikit-learn defaults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth (`None` = grow until pure/min-samples).
    pub max_depth: Option<u32>,
    /// Minimum samples required to split an internal node.
    pub min_samples_split: usize,
    /// Minimum samples required in each leaf.
    pub min_samples_leaf: usize,
    /// Number of features considered per split (`None` = all). Used by
    /// random forests for decorrelation.
    pub max_features: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A trained CART regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    num_features: usize,
}

struct Builder<'a> {
    data: &'a Dataset,
    params: &'a TreeParams,
    nodes: Vec<Node>,
    rng: Option<SplitMix64>,
    feature_scratch: Vec<usize>,
}

impl Builder<'_> {
    fn leaf(&mut self, indices: &[usize]) -> usize {
        let mean = indices.iter().map(|&i| self.data.y[i]).sum::<f64>() / indices.len() as f64;
        self.nodes.push(Node::Leaf { value: mean });
        self.nodes.len() - 1
    }

    /// Best split of `indices` on `feature`: returns
    /// `(threshold, sse_reduction_score)` or `None` if no valid split.
    fn best_split_on(&self, indices: &mut [usize], feature: usize) -> Option<(f64, f64)> {
        indices.sort_unstable_by(|&a, &b| {
            self.data.x.row(a)[feature].total_cmp(&self.data.x.row(b)[feature])
        });
        let n = indices.len();
        let total_sum: f64 = indices.iter().map(|&i| self.data.y[i]).sum();

        let min_leaf = self.params.min_samples_leaf;
        let mut left_sum = 0.0;
        let mut best: Option<(f64, f64)> = None;
        for k in 0..n - 1 {
            let i = indices[k];
            left_sum += self.data.y[i];
            let v = self.data.x.row(i)[feature];
            let v_next = self.data.x.row(indices[k + 1])[feature];
            if v.is_nan() || v_next.is_nan() {
                continue; // never split against a NaN: thresholds stay finite
            }
            if v == v_next {
                continue; // cannot split between equal values
            }
            let nl = k + 1;
            let nr = n - nl;
            if nl < min_leaf || nr < min_leaf {
                continue;
            }
            // Maximizing SSE reduction == maximizing
            // left_sum^2/nl + right_sum^2/nr (total constant).
            let right_sum = total_sum - left_sum;
            let score = left_sum * left_sum / nl as f64 + right_sum * right_sum / nr as f64;
            if best.is_none_or(|(_, s)| score > s) {
                // The midpoint of two adjacent doubles can round up to
                // `v_next`, which would put the whole set on the left and
                // recurse forever; fall back to splitting at `v` exactly.
                let mid = 0.5 * (v + v_next);
                let threshold = if mid < v_next { mid } else { v };
                best = Some((threshold, score));
            }
        }
        best
    }

    fn build(&mut self, indices: &mut [usize], depth: u32) -> usize {
        let n = indices.len();
        debug_assert!(n > 0);
        let y0 = self.data.y[indices[0]];
        let pure = indices.iter().all(|&i| self.data.y[i] == y0);
        let depth_ok = self.params.max_depth.is_none_or(|d| depth < d);
        if pure || !depth_ok || n < self.params.min_samples_split || n < 2 {
            return self.leaf(indices);
        }

        // Candidate features: all, or a random subset for forests.
        let num_features = self.data.x.cols();
        let k = self
            .params
            .max_features
            .unwrap_or(num_features)
            .clamp(1, num_features);
        self.feature_scratch.clear();
        self.feature_scratch.extend(0..num_features);
        if k < num_features {
            let rng = self
                .rng
                .as_mut()
                // sms-lint: allow(E1): fit() always seeds the rng; a None here is a programmer error
                .expect("max_features requires a seeded tree");
            // Partial Fisher-Yates for k random features.
            for i in 0..k {
                let j = i + rng.next_below(num_features - i);
                self.feature_scratch.swap(i, j);
            }
            self.feature_scratch.truncate(k);
        }

        let mut best: Option<(usize, f64, f64)> = None;
        let features = std::mem::take(&mut self.feature_scratch);
        for &f in &features {
            if let Some((thr, score)) = self.best_split_on(indices, f) {
                if best.is_none_or(|(_, _, s)| score > s) {
                    best = Some((f, thr, score));
                }
            }
        }
        self.feature_scratch = features;

        let Some((feature, threshold, _)) = best else {
            return self.leaf(indices);
        };

        // Partition in place. `total_cmp` keeps the sort well-defined in
        // the presence of NaN features (NaNs order before/after finite
        // values depending on sign); `<= threshold` is false for NaN, so
        // NaN rows land on the right just like at predict time.
        indices.sort_unstable_by(|&a, &b| {
            self.data.x.row(a)[feature].total_cmp(&self.data.x.row(b)[feature])
        });
        let split_at = indices.partition_point(|&i| self.data.x.row(i)[feature] <= threshold);
        if split_at == 0 || split_at == n {
            // Defensive: a degenerate partition would recurse on an
            // unchanged subproblem. Cannot happen with the threshold
            // clamping above, but a leaf is always a safe answer.
            return self.leaf(indices);
        }

        let placeholder = self.nodes.len();
        self.nodes.push(Node::Leaf { value: 0.0 }); // patched below
        let (l_idx, r_idx) = indices.split_at_mut(split_at);
        let left = self.build(l_idx, depth + 1);
        let right = self.build(r_idx, depth + 1);
        self.nodes[placeholder] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        placeholder
    }
}

impl DecisionTree {
    /// Fit a tree on the dataset.
    ///
    /// `seed` drives feature subsampling and is only consulted when
    /// `params.max_features` restricts the candidate features.
    ///
    /// NaN feature values are tolerated: sorting uses `total_cmp`, no
    /// split threshold is ever taken adjacent to a NaN, and NaN rows
    /// route to the right subtree (as at predict time, since
    /// `NaN <= threshold` is false).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn fit(data: &Dataset, params: &TreeParams, seed: u64) -> Self {
        assert!(!data.is_empty(), "cannot fit a tree on an empty dataset");
        let mut builder = Builder {
            data,
            params,
            nodes: Vec::new(),
            rng: Some(SplitMix64::new(seed)),
            feature_scratch: Vec::new(),
        };
        let mut indices: Vec<usize> = (0..data.len()).collect();
        let root = builder.build(&mut indices, 0);
        debug_assert_eq!(root, 0);
        Self {
            nodes: builder.nodes,
            num_features: data.x.cols(),
        }
    }

    /// Number of nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Tree depth (diagnostics).
    pub fn depth(&self) -> u32 {
        fn rec(nodes: &[Node], i: usize) -> u32 {
            match nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + rec(nodes, left).max(rec(nodes, right)),
            }
        }
        rec(&self.nodes, 0)
    }
}

impl Regressor for DecisionTree {
    fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_features, "feature count mismatch");
        let mut i = 0;
        loop {
            match self.nodes[i] {
                Node::Leaf { value } => return value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x[feature] <= threshold { left } else { right };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Matrix;

    fn line_data(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..n).map(|i| 2.0 * i as f64 + 1.0).collect();
        Dataset::new(Matrix::from_vecs(&rows), y)
    }

    #[test]
    fn memorizes_training_data_when_unconstrained() {
        let d = line_data(32);
        let t = DecisionTree::fit(&d, &TreeParams::default(), 0);
        for i in 0..32 {
            assert_eq!(t.predict(&[i as f64]), 2.0 * i as f64 + 1.0);
        }
    }

    #[test]
    fn step_function_single_split() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| if i < 5 { 0.0 } else { 10.0 }).collect();
        let d = Dataset::new(Matrix::from_vecs(&rows), y);
        let t = DecisionTree::fit(&d, &TreeParams::default(), 0);
        assert_eq!(t.predict(&[0.0]), 0.0);
        assert_eq!(t.predict(&[9.0]), 10.0);
        // One split and two leaves suffice.
        assert_eq!(t.node_count(), 3);
    }

    #[test]
    fn max_depth_limits_growth() {
        let d = line_data(64);
        let t = DecisionTree::fit(
            &d,
            &TreeParams {
                max_depth: Some(2),
                ..TreeParams::default()
            },
            0,
        );
        assert!(t.depth() <= 2, "depth = {}", t.depth());
    }

    #[test]
    fn min_samples_leaf_respected() {
        let d = line_data(16);
        let t = DecisionTree::fit(
            &d,
            &TreeParams {
                min_samples_leaf: 4,
                ..TreeParams::default()
            },
            0,
        );
        // With >= 4 samples per leaf over 16 points, at most 4 leaves.
        assert!(t.node_count() <= 7, "nodes = {}", t.node_count());
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let rows: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        let d = Dataset::new(Matrix::from_vecs(&rows), vec![3.5; 8]);
        let t = DecisionTree::fit(&d, &TreeParams::default(), 0);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[100.0]), 3.5);
    }

    #[test]
    fn splits_on_informative_feature() {
        // Feature 0 is noise; feature 1 determines y.
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i * 7 % 13) as f64, (i % 2) as f64])
            .collect();
        let y: Vec<f64> = (0..20).map(|i| (i % 2) as f64 * 100.0).collect();
        let d = Dataset::new(Matrix::from_vecs(&rows), y);
        let t = DecisionTree::fit(&d, &TreeParams::default(), 0);
        assert_eq!(t.predict(&[5.0, 0.0]), 0.0);
        assert_eq!(t.predict(&[5.0, 1.0]), 100.0);
    }

    #[test]
    fn duplicate_feature_values_handled() {
        let rows: Vec<Vec<f64>> = vec![vec![1.0]; 10];
        let y: Vec<f64> = (0..10).map(f64::from).collect();
        let d = Dataset::new(Matrix::from_vecs(&rows), y);
        // No split possible on identical values; must produce a mean leaf.
        let t = DecisionTree::fit(&d, &TreeParams::default(), 0);
        assert_eq!(t.node_count(), 1);
        assert!((t.predict(&[1.0]) - 4.5).abs() < 1e-12);
    }

    #[test]
    fn interpolates_smooth_function_reasonably() {
        let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 20.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0].sin()).collect();
        let d = Dataset::new(Matrix::from_vecs(&rows), y);
        let t = DecisionTree::fit(&d, &TreeParams::default(), 0);
        let mae: f64 = (0..50)
            .map(|i| {
                let x = 0.1 + i as f64 / 5.3;
                (t.predict(&[x]) - x.sin()).abs()
            })
            .sum::<f64>()
            / 50.0;
        assert!(mae < 0.05, "mae = {mae}");
    }

    #[test]
    fn adjacent_double_features_terminate() {
        // Two feature values one ULP apart: the naive midpoint rounds up
        // to the larger value and the split degenerates (regression test
        // for an infinite recursion found by the heterogeneous pipeline).
        let v = 1.4719590025860636_f64;
        let v_next = f64::from_bits(v.to_bits() + 1);
        assert!(0.5 * (v + v_next) == v_next, "premise: midpoint rounds up");
        let rows = vec![vec![v], vec![v], vec![v_next], vec![v_next]];
        let y = vec![0.0, 1.0, 2.0, 3.0];
        let d = Dataset::new(Matrix::from_vecs(&rows), y);
        let t = DecisionTree::fit(&d, &TreeParams::default(), 0);
        assert!((t.predict(&[v]) - 0.5).abs() < 1e-12);
        assert!((t.predict(&[v_next]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn duplicate_rows_with_conflicting_targets_terminate() {
        let rows = vec![vec![1.0, 2.0], vec![1.0, 2.0], vec![3.0, 4.0]];
        let y = vec![0.0, 10.0, 7.0];
        let d = Dataset::new(Matrix::from_vecs(&rows), y);
        let t = DecisionTree::fit(&d, &TreeParams::default(), 0);
        assert!((t.predict(&[1.0, 2.0]) - 5.0).abs() < 1e-12, "mean leaf");
        assert!((t.predict(&[3.0, 4.0]) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn nan_features_do_not_panic() {
        // Regression test: split sorting used `partial_cmp(..).unwrap()`
        // and aborted on the first NaN feature. NaN rows must instead
        // train without panicking and route right at predict time.
        let rows: Vec<Vec<f64>> = (0..16)
            .map(|i| {
                if i % 5 == 0 {
                    vec![f64::NAN, i as f64]
                } else {
                    vec![i as f64, i as f64]
                }
            })
            .collect();
        let y: Vec<f64> = (0..16).map(|i| (i % 2) as f64 * 10.0).collect();
        let d = Dataset::new(Matrix::from_vecs(&rows), y);
        let t = DecisionTree::fit(&d, &TreeParams::default(), 0);
        assert!(t.node_count() >= 1);
        // Predictions stay finite, for NaN inputs too.
        assert!(t.predict(&[f64::NAN, 3.0]).is_finite());
        assert!(t.predict(&[7.0, 7.0]).is_finite());
        // A seeded, feature-subsampled fit (forest path) also survives.
        let forest_params = TreeParams {
            max_features: Some(1),
            ..TreeParams::default()
        };
        let t2 = DecisionTree::fit(&d, &forest_params, 42);
        assert!(t2.predict(&[f64::NAN, f64::NAN]).is_finite());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_dataset_panics() {
        let d = Dataset::new(Matrix::from_rows(0, 1, vec![]), vec![]);
        let _ = DecisionTree::fit(&d, &TreeParams::default(), 0);
    }
}
