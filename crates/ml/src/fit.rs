//! Least-squares curve fits used by the regression-based extrapolation:
//! linear `y = a·x + b`, power `y = a·x^b`, and logarithmic
//! `y = a·ln(x) + b` (paper §V-E2).

use serde::{Deserialize, Serialize};

/// Curve families for core-count extrapolation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CurveModel {
    /// `y = a·x + b`
    Linear,
    /// `y = a·x^b` (fit in log-log space)
    Power,
    /// `y = a·ln(x) + b`
    Logarithmic,
}

impl std::fmt::Display for CurveModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Linear => write!(f, "linear"),
            Self::Power => write!(f, "power"),
            Self::Logarithmic => write!(f, "log"),
        }
    }
}

/// A fitted curve, ready to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FittedCurve {
    /// Which family was fitted.
    pub model: CurveModel,
    /// Slope-like parameter `a`.
    pub a: f64,
    /// Intercept-like parameter `b`.
    pub b: f64,
}

impl FittedCurve {
    /// Evaluate the curve at `x`.
    ///
    /// # Examples
    ///
    /// ```
    /// use sms_ml::fit::{fit_curve, CurveModel};
    /// let xs = [1.0_f64, 2.0, 4.0, 8.0];
    /// let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x.ln() + 1.0).collect();
    /// let c = fit_curve(CurveModel::Logarithmic, &xs, &ys).unwrap();
    /// assert!((c.eval(32.0) - (3.0 * 32f64.ln() + 1.0)).abs() < 1e-9);
    /// ```
    pub fn eval(&self, x: f64) -> f64 {
        match self.model {
            CurveModel::Linear => self.a * x + self.b,
            CurveModel::Power => self.a * x.powf(self.b),
            CurveModel::Logarithmic => self.a * x.ln() + self.b,
        }
    }
}

/// Ordinary least squares on `(u, v)` pairs: returns `(slope, intercept)`.
fn ols(u: &[f64], v: &[f64]) -> Option<(f64, f64)> {
    let n = u.len() as f64;
    if u.len() < 2 {
        return None;
    }
    let mu: f64 = u.iter().sum::<f64>() / n;
    let mv: f64 = v.iter().sum::<f64>() / n;
    let sxx: f64 = u.iter().map(|x| (x - mu) * (x - mu)).sum();
    if sxx < 1e-15 {
        return None;
    }
    let sxy: f64 = u.iter().zip(v).map(|(x, y)| (x - mu) * (y - mv)).sum();
    let slope = sxy / sxx;
    Some((slope, mv - slope * mu))
}

/// Fit one curve family by (transformed) least squares.
///
/// Returns `None` when the fit is degenerate: fewer than two points,
/// constant `x`, or (for power/log fits) non-positive values where a
/// logarithm is required.
pub fn fit_curve(model: CurveModel, xs: &[f64], ys: &[f64]) -> Option<FittedCurve> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    match model {
        CurveModel::Linear => {
            let (a, b) = ols(xs, ys)?;
            Some(FittedCurve { model, a, b })
        }
        CurveModel::Logarithmic => {
            if xs.iter().any(|&x| x <= 0.0) {
                return None;
            }
            let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
            let (a, b) = ols(&lx, ys)?;
            Some(FittedCurve { model, a, b })
        }
        CurveModel::Power => {
            if xs.iter().any(|&x| x <= 0.0) || ys.iter().any(|&y| y <= 0.0) {
                return None;
            }
            let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
            let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
            let (b, ln_a) = ols(&lx, &ly)?;
            Some(FittedCurve {
                model,
                a: ln_a.exp(),
                b,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_exact() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| -2.0 * x + 7.0).collect();
        let c = fit_curve(CurveModel::Linear, &xs, &ys).unwrap();
        assert!((c.a + 2.0).abs() < 1e-12);
        assert!((c.b - 7.0).abs() < 1e-12);
        assert!((c.eval(10.0) + 13.0).abs() < 1e-12);
    }

    #[test]
    fn power_exact() {
        let xs = [1.0, 2.0, 4.0, 8.0, 16.0];
        let ys: Vec<f64> = xs.iter().map(|x: &f64| 3.0 * x.powf(-0.5)).collect();
        let c = fit_curve(CurveModel::Power, &xs, &ys).unwrap();
        assert!((c.a - 3.0).abs() < 1e-9);
        assert!((c.b + 0.5).abs() < 1e-9);
    }

    #[test]
    fn log_exact() {
        let xs = [1.0, 2.0, 4.0, 8.0];
        let ys: Vec<f64> = xs.iter().map(|x: &f64| 0.5 * x.ln() + 2.0).collect();
        let c = fit_curve(CurveModel::Logarithmic, &xs, &ys).unwrap();
        assert!((c.a - 0.5).abs() < 1e-12);
        assert!((c.b - 2.0).abs() < 1e-12);
    }

    #[test]
    fn log_fits_saturating_data_better_than_linear() {
        // IPC-vs-cores style data: decreasing, saturating.
        let xs = [2.0, 4.0, 8.0, 16.0];
        let ys = [0.9, 0.8, 0.72, 0.66];
        let lin = fit_curve(CurveModel::Linear, &xs, &ys).unwrap();
        let log = fit_curve(CurveModel::Logarithmic, &xs, &ys).unwrap();
        // Extrapolated to 32 cores, linear goes negative-ish territory
        // faster; log stays saturating. Check log error at a held-out
        // "true" saturating value of ~0.61.
        let target = 0.61;
        assert!((log.eval(32.0) - target).abs() < (lin.eval(32.0) - target).abs());
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(fit_curve(CurveModel::Linear, &[1.0], &[2.0]).is_none());
        assert!(fit_curve(CurveModel::Linear, &[2.0, 2.0], &[1.0, 5.0]).is_none());
        assert!(fit_curve(CurveModel::Logarithmic, &[0.0, 1.0], &[1.0, 2.0]).is_none());
        assert!(fit_curve(CurveModel::Power, &[1.0, 2.0], &[-1.0, 2.0]).is_none());
        assert!(fit_curve(CurveModel::Linear, &[1.0, 2.0], &[1.0]).is_none());
    }

    #[test]
    fn noisy_fit_is_least_squares() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [1.1, 1.9, 3.2, 3.8, 5.1];
        let c = fit_curve(CurveModel::Linear, &xs, &ys).unwrap();
        assert!((c.a - 1.0).abs() < 0.1);
        assert!(c.b.abs() < 0.3);
    }

    #[test]
    fn display_names() {
        assert_eq!(CurveModel::Linear.to_string(), "linear");
        assert_eq!(CurveModel::Power.to_string(), "power");
        assert_eq!(CurveModel::Logarithmic.to_string(), "log");
    }
}
