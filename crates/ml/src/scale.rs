//! Feature standardization (zero mean, unit variance), as scikit-learn's
//! `StandardScaler`. SVR with an RBF kernel is scale-sensitive, so the
//! extrapolation pipelines standardize features before training.

use serde::{Deserialize, Serialize};

use crate::data::Matrix;

/// Per-feature standardizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fit a scaler to the columns of `x`.
    ///
    /// Constant columns get a standard deviation of 1 so that transforming
    /// maps them to zero rather than dividing by zero.
    ///
    /// # Panics
    ///
    /// Panics if `x` has no rows.
    pub fn fit(x: &Matrix) -> Self {
        Self::fit_robust(x, 0.0)
    }

    /// Fit with a *floored* standard deviation: each column's divisor is
    /// at least `rel_floor` times the column's RMS magnitude.
    ///
    /// Plain standardization misbehaves when a column's variance is tiny
    /// relative to its magnitude (e.g. a sum of many draws): new data a
    /// few units away lands "many sigmas" out and kernel methods collapse.
    /// The floor keeps such columns on a sane scale while leaving
    /// well-spread columns untouched. `rel_floor = 0` is plain
    /// standardization.
    ///
    /// # Panics
    ///
    /// Panics if `x` has no rows or `rel_floor` is negative.
    pub fn fit_robust(x: &Matrix, rel_floor: f64) -> Self {
        assert!(x.rows() > 0, "cannot fit a scaler to an empty matrix");
        assert!(rel_floor >= 0.0, "rel_floor must be non-negative");
        let n = x.rows() as f64;
        let cols = x.cols();
        let mut means = vec![0.0; cols];
        for row in x.iter_rows() {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; cols];
        for row in x.iter_rows() {
            for ((var, v), m) in vars.iter_mut().zip(row).zip(&means) {
                let d = v - m;
                *var += d * d;
            }
        }
        // Column RMS magnitudes for the floor.
        let mut sq = vec![0.0; cols];
        for row in x.iter_rows() {
            for (acc, v) in sq.iter_mut().zip(row) {
                *acc += v * v;
            }
        }
        let stds = vars
            .into_iter()
            .zip(&sq)
            .map(|(v, &ss)| {
                let s = (v / n).sqrt();
                let floor = rel_floor * (ss / n).sqrt();
                let s = s.max(floor);
                if s > 1e-12 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Self { means, stds }
    }

    /// Standardize one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if the feature count differs from the fitted one.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.means.len(), "feature count mismatch");
        row.iter()
            .zip(&self.means)
            .zip(&self.stds)
            .map(|((v, m), s)| (v - m) / s)
            .collect()
    }

    /// Standardize a whole matrix.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        let rows: Vec<Vec<f64>> = x.iter_rows().map(|r| self.transform_row(r)).collect();
        Matrix::from_vecs(&rows)
    }

    /// Fit and transform in one step.
    pub fn fit_transform(x: &Matrix) -> (Self, Matrix) {
        let s = Self::fit(x);
        let t = s.transform(x);
        (s, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_variance() {
        let x = Matrix::from_vecs(&[vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]]);
        let (_, t) = StandardScaler::fit_transform(&x);
        for c in 0..2 {
            let vals: Vec<f64> = (0..3).map(|r| t.row(r)[c]).collect();
            let mean: f64 = vals.iter().sum::<f64>() / 3.0;
            let var: f64 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let x = Matrix::from_vecs(&[vec![7.0], vec![7.0], vec![7.0]]);
        let (_, t) = StandardScaler::fit_transform(&x);
        for r in 0..3 {
            assert_eq!(t.row(r)[0], 0.0);
        }
    }

    #[test]
    fn transform_new_rows_consistent() {
        let x = Matrix::from_vecs(&[vec![0.0], vec![2.0]]);
        let s = StandardScaler::fit(&x);
        // mean 1, std 1.
        assert_eq!(s.transform_row(&[1.0]), vec![0.0]);
        assert_eq!(s.transform_row(&[2.0]), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn rejects_wrong_width() {
        let x = Matrix::from_vecs(&[vec![0.0], vec![2.0]]);
        let s = StandardScaler::fit(&x);
        let _ = s.transform_row(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_fit() {
        let _ = StandardScaler::fit(&Matrix::from_rows(0, 2, vec![]));
    }
}
