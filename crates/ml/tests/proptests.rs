//! Property-based tests for the ML library's model invariants.

// Test/bench/example target: the workspace-wide clippy::unwrap_used deny
// is meant for library code (see Cargo.toml); unwrapping here is fine.
#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use sms_ml::data::{Dataset, Matrix, Regressor};
use sms_ml::fit::{fit_curve, CurveModel};
use sms_ml::forest::{ForestParams, RandomForest};
use sms_ml::scale::StandardScaler;
use sms_ml::svr::{Svr, SvrParams};
use sms_ml::tree::{DecisionTree, TreeParams};

fn dataset_1d() -> impl Strategy<Value = Dataset> {
    proptest::collection::vec((-100.0f64..100.0, -50.0f64..50.0), 4..60).prop_map(|pts| {
        let rows: Vec<Vec<f64>> = pts.iter().map(|(x, _)| vec![*x]).collect();
        let y: Vec<f64> = pts.iter().map(|(_, y)| *y).collect();
        Dataset::new(Matrix::from_vecs(&rows), y)
    })
}

proptest! {
    #[test]
    fn tree_predictions_stay_within_target_range(d in dataset_1d(), probe in -200.0f64..200.0) {
        let t = DecisionTree::fit(&d, &TreeParams::default(), 0);
        let lo = d.y.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = d.y.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let p = t.predict(&[probe]);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9,
            "tree prediction {p} outside target range [{lo}, {hi}]");
    }

    #[test]
    fn tree_memorizes_distinct_points(
        xs in proptest::collection::hash_set(-1000i32..1000, 2..40),
    ) {
        let xs: Vec<f64> = xs.into_iter().map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x * 3.0 - 1.0).collect();
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let d = Dataset::new(Matrix::from_vecs(&rows), ys.clone());
        let t = DecisionTree::fit(&d, &TreeParams::default(), 0);
        for (x, y) in xs.iter().zip(&ys) {
            prop_assert!((t.predict(&[*x]) - y).abs() < 1e-9);
        }
    }

    #[test]
    fn forest_prediction_within_tree_range(d in dataset_1d(), probe in -200.0f64..200.0) {
        let f = RandomForest::fit(
            &d,
            &ForestParams { num_trees: 9, ..ForestParams::default() },
            3,
        );
        // The mean of tree predictions is bounded by the target range too.
        let lo = d.y.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = d.y.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let p = f.predict(&[probe]);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
    }

    #[test]
    fn scaler_round_trips_statistics(
        cols in 1usize..5,
        n in 2usize..40,
        seed in 0u64..100,
    ) {
        // Deterministic pseudo-random matrix.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 10.0 - 50.0
        };
        let rows: Vec<Vec<f64>> = (0..n).map(|_| (0..cols).map(|_| next()).collect()).collect();
        let x = Matrix::from_vecs(&rows);
        let (_, t) = StandardScaler::fit_transform(&x);
        for c in 0..cols {
            let vals: Vec<f64> = (0..n).map(|r| t.row(r)[c]).collect();
            let mean: f64 = vals.iter().sum::<f64>() / n as f64;
            prop_assert!(mean.abs() < 1e-9, "column {c} mean {mean}");
        }
    }

    #[test]
    fn svr_predictions_are_finite_and_bounded(
        d in dataset_1d(),
        probe in -500.0f64..500.0,
    ) {
        let m = Svr::fit(&d, &SvrParams::default());
        let p = m.predict(&[probe]);
        prop_assert!(p.is_finite());
        // RBF SVR is bounded by bias ± sum |beta_i| (each kernel value <= 1).
        let lo = d.y.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = d.y.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = (hi - lo).abs() + 1.0;
        prop_assert!(p > lo - 100.0 * span && p < hi + 100.0 * span);
    }

    #[test]
    fn svr_respects_epsilon_tube_on_constant_targets(
        c in 0.5f64..20.0,
        target in -10.0f64..10.0,
    ) {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![f64::from(i)]).collect();
        let d = Dataset::new(Matrix::from_vecs(&rows), vec![target; 10]);
        let m = Svr::fit(&d, &SvrParams { c, epsilon: 0.1, ..SvrParams::default() });
        // Constant targets need no support vectors at all.
        prop_assert_eq!(m.num_support_vectors(), 0);
        prop_assert!((m.predict(&[4.0]) - target).abs() < 0.11);
    }

    #[test]
    fn linear_fit_residual_orthogonality(
        pts in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 3..40),
    ) {
        let xs: Vec<f64> = pts.iter().map(|(x, _)| *x).collect();
        let ys: Vec<f64> = pts.iter().map(|(_, y)| *y).collect();
        prop_assume!(xs.iter().any(|&x| (x - xs[0]).abs() > 1e-6));
        let c = fit_curve(CurveModel::Linear, &xs, &ys).unwrap();
        // Least squares: residuals sum to ~0 and are uncorrelated with x.
        let resid: Vec<f64> = xs.iter().zip(&ys).map(|(&x, &y)| y - c.eval(x)).collect();
        let sum: f64 = resid.iter().sum();
        let dot: f64 = resid.iter().zip(&xs).map(|(r, x)| r * x).sum();
        prop_assert!(sum.abs() < 1e-6 * (1.0 + ys.iter().map(|y| y.abs()).sum::<f64>()));
        prop_assert!(dot.abs() < 1e-5 * (1.0 + xs.iter().map(|x| x * x).sum::<f64>()));
    }

    #[test]
    fn power_fit_positive_everywhere(a in 0.1f64..10.0, b in -2.0f64..2.0) {
        let xs = [1.0f64, 2.0, 4.0, 8.0, 16.0];
        let ys: Vec<f64> = xs.iter().map(|&x| a * x.powf(b)).collect();
        let c = fit_curve(CurveModel::Power, &xs, &ys).unwrap();
        for x in [1.0, 3.0, 32.0, 100.0] {
            prop_assert!(c.eval(x) > 0.0, "power fit must stay positive");
        }
    }
}
