//! # sms-faults — deterministic failpoint registry
//!
//! Named fault-injection sites (`cache.write`, `cache.read`, `run.body`,
//! `manifest.flush`, `serve.worker`, …) that production code calls on its
//! failure-prone paths. A site is a no-op unless a fault *schedule* is
//! installed, which normally happens once per process from the
//! `SMS_FAULTS` environment variable. With a schedule active, each hit of
//! a site is numbered and the schedule decides — as a pure function of
//! the (site, hit index, seed) triple — whether to inject an error, a
//! panic, a delay, or byte corruption. Because the decision depends only
//! on the hit index, the injection *sequence* at a site is identical
//! whether hits come from one thread or many; this is what makes chaos
//! runs reproducible and lets a kill/resume test assert bit-identical
//! final state.
//!
//! # Schedule grammar (`SMS_FAULTS`)
//!
//! Semicolon-separated rules, each `site=action[@trigger]`, plus an
//! optional `seed=N` segment for probabilistic triggers:
//!
//! ```text
//! SMS_FAULTS='cache.write=err@3;run.body=panic@0.1%seed=42'
//! SMS_FAULTS='run.body=delay:200;cache.read=corrupt@2'
//! SMS_FAULTS='serve.worker=err@5%;seed=7'
//! ```
//!
//! * actions — `err` (typed error), `panic`, `delay:MS` (sleep MS
//!   milliseconds then continue), `corrupt` (flip bytes at sites that
//!   expose a payload; a no-op at sites that don't),
//! * triggers — `@N` fires on the N-th hit only (1-based), `@P%` fires
//!   each hit with probability P percent (seeded, deterministic per hit
//!   index), no trigger fires on every hit,
//! * a trailing `seed=N` glued after a `%` trigger seeds that rule; a
//!   standalone `seed=N` segment seeds every probabilistic rule that does
//!   not carry its own.
//!
//! When several rules name the same site, the first rule (in spec order)
//! that fires on a given hit wins.
//!
//! # Example
//!
//! ```
//! use sms_faults::{FaultAction, Schedule};
//!
//! let s = Schedule::parse("cache.write=err@2;cache.write=delay:0").unwrap();
//! assert_eq!(s.evaluate("cache.write").action, Some(FaultAction::DelayMs(0)));
//! assert_eq!(s.evaluate("cache.write").action, Some(FaultAction::Err));
//! assert_eq!(s.evaluate("other.site").action, None);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// What an armed failpoint injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Return a typed [`FaultError`] from the site.
    Err,
    /// Panic at the site (exercises `catch_unwind` isolation).
    Panic,
    /// Sleep this many milliseconds, then continue normally.
    DelayMs(u64),
    /// Deterministically flip bytes in the site's payload (sites without
    /// a payload treat this as a no-op).
    Corrupt,
}

/// The error injected by an `err` action; convert to `std::io::Error` or
/// a domain error at the call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// The failpoint site that fired.
    pub site: String,
    /// The hit index (1-based) at which it fired.
    pub hit: u64,
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at `{}` (hit {})", self.site, self.hit)
    }
}

impl std::error::Error for FaultError {}

impl From<FaultError> for std::io::Error {
    fn from(e: FaultError) -> Self {
        std::io::Error::other(e)
    }
}

/// When a rule fires.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Trigger {
    /// Every hit.
    Always,
    /// The N-th hit only (1-based).
    Nth(u64),
    /// Each hit independently with this probability (0..=1), decided by a
    /// deterministic hash of `(seed, site, hit)`.
    Probability { p: f64, seed: u64 },
}

/// One `site=action@trigger` rule.
#[derive(Debug, Clone, PartialEq)]
struct Rule {
    action: FaultAction,
    trigger: Trigger,
}

/// A malformed `SMS_FAULTS` specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// The offending segment.
    pub segment: String,
    /// What was wrong with it.
    pub reason: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bad SMS_FAULTS segment `{}`: {}",
            self.segment, self.reason
        )
    }
}

impl std::error::Error for ParseError {}

/// The outcome of evaluating one hit of a site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// This hit's 1-based index at the site.
    pub hit: u64,
    /// The action to inject, if any rule fired.
    pub action: Option<FaultAction>,
}

/// SplitMix64: the deterministic per-hit coin for probabilistic triggers.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a site name, mixing it into the probabilistic coin so two
/// sites with the same seed draw independent sequences.
fn site_hash(site: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in site.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A parsed fault schedule with per-site hit counters.
///
/// Instantiable directly for tests; production code goes through the
/// process-global schedule installed from `SMS_FAULTS` (see
/// [`check`], [`check_io`], [`corrupt_bytes`]).
#[derive(Debug)]
pub struct Schedule {
    rules: BTreeMap<String, Vec<Rule>>,
    hits: BTreeMap<String, AtomicU64>,
    spec: String,
}

impl Schedule {
    /// Parse a schedule from the `SMS_FAULTS` grammar.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the first malformed segment.
    pub fn parse(spec: &str) -> Result<Self, ParseError> {
        let mut rules: BTreeMap<String, Vec<(usize, Rule)>> = BTreeMap::new();
        let mut default_seed: Option<u64> = None;
        let mut order = 0usize;
        // Two passes: a standalone `seed=N` segment applies to every
        // probabilistic rule in the spec, wherever it appears.
        for segment in spec.split(';').map(str::trim).filter(|s| !s.is_empty()) {
            if let Some(seed) = segment.strip_prefix("seed=") {
                default_seed = Some(seed.parse().map_err(|_| ParseError {
                    segment: segment.to_owned(),
                    reason: "seed must be an unsigned integer".to_owned(),
                })?);
            }
        }
        for segment in spec.split(';').map(str::trim).filter(|s| !s.is_empty()) {
            if segment.starts_with("seed=") {
                continue;
            }
            let (site, rhs) = segment.split_once('=').ok_or_else(|| ParseError {
                segment: segment.to_owned(),
                reason: "expected `site=action[@trigger]`".to_owned(),
            })?;
            let site = site.trim();
            if site.is_empty() {
                return Err(ParseError {
                    segment: segment.to_owned(),
                    reason: "empty site name".to_owned(),
                });
            }
            let (action_str, trigger_str) = match rhs.split_once('@') {
                Some((a, t)) => (a.trim(), Some(t.trim())),
                None => (rhs.trim(), None),
            };
            let action = Self::parse_action(action_str, segment)?;
            let trigger = match trigger_str {
                None => Trigger::Always,
                Some(t) => Self::parse_trigger(t, default_seed, segment)?,
            };
            rules
                .entry(site.to_owned())
                .or_default()
                .push((order, Rule { action, trigger }));
            order += 1;
        }
        let mut hits = BTreeMap::new();
        let rules: BTreeMap<String, Vec<Rule>> = rules
            .into_iter()
            .map(|(site, mut rs)| {
                rs.sort_by_key(|(o, _)| *o);
                hits.insert(site.clone(), AtomicU64::new(0));
                (site, rs.into_iter().map(|(_, r)| r).collect())
            })
            .collect();
        Ok(Self {
            rules,
            hits,
            spec: spec.to_owned(),
        })
    }

    fn parse_action(s: &str, segment: &str) -> Result<FaultAction, ParseError> {
        if let Some(ms) = s.strip_prefix("delay:") {
            let ms = ms.parse().map_err(|_| ParseError {
                segment: segment.to_owned(),
                reason: "delay milliseconds must be an unsigned integer".to_owned(),
            })?;
            return Ok(FaultAction::DelayMs(ms));
        }
        match s {
            "err" => Ok(FaultAction::Err),
            "panic" => Ok(FaultAction::Panic),
            "corrupt" => Ok(FaultAction::Corrupt),
            other => Err(ParseError {
                segment: segment.to_owned(),
                reason: format!("unknown action `{other}` (err, panic, delay:MS, corrupt)"),
            }),
        }
    }

    fn parse_trigger(
        t: &str,
        default_seed: Option<u64>,
        segment: &str,
    ) -> Result<Trigger, ParseError> {
        if let Some(percent_pos) = t.find('%') {
            let (pct, rest) = t.split_at(percent_pos);
            let rest = &rest[1..]; // drop '%'
            let p: f64 = pct.trim().parse().map_err(|_| ParseError {
                segment: segment.to_owned(),
                reason: "probability must be a number, e.g. `0.1%`".to_owned(),
            })?;
            if !(0.0..=100.0).contains(&p) {
                return Err(ParseError {
                    segment: segment.to_owned(),
                    reason: "probability must be within 0..=100 percent".to_owned(),
                });
            }
            let seed = match rest.trim() {
                "" => default_seed.unwrap_or(0),
                glued => glued
                    .strip_prefix("seed=")
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ParseError {
                        segment: segment.to_owned(),
                        reason: "expected `seed=N` after `%`".to_owned(),
                    })?,
            };
            return Ok(Trigger::Probability { p: p / 100.0, seed });
        }
        let n: u64 = t.parse().map_err(|_| ParseError {
            segment: segment.to_owned(),
            reason: "trigger must be a hit count `N` or a probability `P%`".to_owned(),
        })?;
        if n == 0 {
            return Err(ParseError {
                segment: segment.to_owned(),
                reason: "hit counts are 1-based; `@0` never fires".to_owned(),
            });
        }
        Ok(Trigger::Nth(n))
    }

    /// The spec string this schedule was parsed from.
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// Whether a rule fires on `hit` (1-based) of `site` — a pure
    /// function, shared by [`Self::evaluate`] and the determinism tests.
    fn decide(&self, site: &str, hit: u64) -> Option<FaultAction> {
        let rules = self.rules.get(site)?;
        rules
            .iter()
            .find(|r| match r.trigger {
                Trigger::Always => true,
                Trigger::Nth(n) => hit == n,
                Trigger::Probability { p, seed } => {
                    let coin = splitmix64(seed ^ site_hash(site) ^ hit);
                    (coin as f64 / u64::MAX as f64) < p
                }
            })
            .map(|r| r.action)
    }

    /// Count one hit of `site` and return the injection decision for it.
    ///
    /// Hit numbering is per-site and process-wide monotonic; the decision
    /// depends only on the hit index, never on which thread hit the site.
    pub fn evaluate(&self, site: &str) -> Evaluation {
        match self.hits.get(site) {
            // Sites with no rules are not counted: an unscheduled site
            // must cost one map lookup and nothing else.
            None => Evaluation {
                hit: 0,
                action: None,
            },
            Some(counter) => {
                // sms-lint: atomic(counter): hit index; fetch_add alone makes it unique
                let hit = counter.fetch_add(1, Ordering::Relaxed) + 1;
                Evaluation {
                    hit,
                    action: self.decide(site, hit),
                }
            }
        }
    }
}

/// The process-global schedule, installed at most once from `SMS_FAULTS`.
static GLOBAL: OnceLock<Option<Schedule>> = OnceLock::new();

/// The active global schedule, if `SMS_FAULTS` was set (and parsed) when
/// the first failpoint was hit. A malformed spec warns once and disables
/// injection rather than poisoning every run that inherits the variable.
pub fn active() -> Option<&'static Schedule> {
    GLOBAL
        .get_or_init(|| match std::env::var("SMS_FAULTS") {
            Err(_) => None,
            Ok(spec) if spec.trim().is_empty() => None,
            Ok(spec) => match Schedule::parse(&spec) {
                Ok(s) => {
                    eprintln!("sms-faults: armed with `{spec}`");
                    Some(s)
                }
                Err(e) => {
                    eprintln!("sms-faults: ignoring SMS_FAULTS: {e}");
                    None
                }
            },
        })
        .as_ref()
}

/// Whether any fault schedule is armed in this process.
pub fn enabled() -> bool {
    active().is_some()
}

fn announce(site: &str, hit: u64, what: &str) {
    eprintln!("sms-faults: injected {what} at `{site}` (hit {hit})");
}

/// Hit a payload-less failpoint: injects `err` (as `Err`), `panic`, and
/// `delay`; `corrupt` is a no-op here. Compiles down to a single cached
/// `None` check when `SMS_FAULTS` is unset.
///
/// # Errors
///
/// Returns the injected [`FaultError`] when an `err` rule fires.
///
/// # Panics
///
/// Panics when a `panic` rule fires — by design; callers are expected to
/// be panic-isolated.
pub fn check(site: &str) -> Result<(), FaultError> {
    let Some(schedule) = active() else {
        return Ok(());
    };
    let eval = schedule.evaluate(site);
    match eval.action {
        None | Some(FaultAction::Corrupt) => Ok(()),
        Some(FaultAction::DelayMs(ms)) => {
            announce(site, eval.hit, &format!("{ms}ms delay"));
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Ok(())
        }
        Some(FaultAction::Err) => {
            announce(site, eval.hit, "error");
            Err(FaultError {
                site: site.to_owned(),
                hit: eval.hit,
            })
        }
        Some(FaultAction::Panic) => {
            announce(site, eval.hit, "panic");
            // sms-lint: allow(E1): the injected panic IS the feature under test
            panic!("sms-faults: injected panic at `{site}` (hit {})", eval.hit);
        }
    }
}

/// [`check`] with the injected error converted to `std::io::Error`, for
/// `?` use inside I/O closures.
///
/// # Errors
///
/// Returns the injected fault as an `io::Error` of kind `Other`.
pub fn check_io(site: &str) -> std::io::Result<()> {
    check(site).map_err(std::io::Error::from)
}

/// Hit a failpoint that owns a byte payload (a serialized cache entry, a
/// journal line): `corrupt` deterministically flips bytes in `bytes` and
/// returns `Ok(true)`; `err`/`panic`/`delay` behave as in [`check`].
///
/// The flipped positions derive from the hit index, so a corruption
/// schedule damages the same bytes no matter how work is threaded.
///
/// # Errors
///
/// Returns the injected [`FaultError`] when an `err` rule fires.
pub fn corrupt_bytes(site: &str, bytes: &mut [u8]) -> Result<bool, FaultError> {
    let Some(schedule) = active() else {
        return Ok(false);
    };
    let eval = schedule.evaluate(site);
    match eval.action {
        Some(FaultAction::Corrupt) => {
            if bytes.is_empty() {
                return Ok(false);
            }
            announce(site, eval.hit, "byte corruption");
            // Flip three deterministic bytes (or as many as fit).
            for i in 0..3u64 {
                let pos = splitmix64(eval.hit ^ site_hash(site) ^ (i << 32)) as usize % bytes.len();
                bytes[pos] ^= 0xa5;
            }
            Ok(true)
        }
        Some(FaultAction::DelayMs(ms)) => {
            announce(site, eval.hit, &format!("{ms}ms delay"));
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Ok(false)
        }
        Some(FaultAction::Err) => {
            announce(site, eval.hit, "error");
            Err(FaultError {
                site: site.to_owned(),
                hit: eval.hit,
            })
        }
        Some(FaultAction::Panic) => {
            announce(site, eval.hit, "panic");
            // sms-lint: allow(E1): the injected panic IS the feature under test
            panic!("sms-faults: injected panic at `{site}` (hit {})", eval.hit);
        }
        None => Ok(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap as Map;

    #[test]
    fn parse_the_issue_example() {
        let s = Schedule::parse("cache.write=err@3;run.body=panic@0.1%seed=42").unwrap();
        assert_eq!(
            s.rules["cache.write"],
            vec![Rule {
                action: FaultAction::Err,
                trigger: Trigger::Nth(3)
            }]
        );
        assert_eq!(
            s.rules["run.body"],
            vec![Rule {
                action: FaultAction::Panic,
                trigger: Trigger::Probability { p: 0.001, seed: 42 }
            }]
        );
    }

    #[test]
    fn parse_standalone_seed_and_delay_and_corrupt() {
        let s = Schedule::parse("a=delay:250;seed=7;b=corrupt@5%;c=err").unwrap();
        assert_eq!(
            s.rules["a"][0],
            Rule {
                action: FaultAction::DelayMs(250),
                trigger: Trigger::Always
            }
        );
        assert_eq!(
            s.rules["b"][0],
            Rule {
                action: FaultAction::Corrupt,
                trigger: Trigger::Probability { p: 0.05, seed: 7 }
            }
        );
        assert_eq!(
            s.rules["c"][0],
            Rule {
                action: FaultAction::Err,
                trigger: Trigger::Always
            }
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "nosuchformat",
            "a=explode",
            "a=err@zero",
            "a=err@0",
            "a=err@150%",
            "a=delay:x",
            "=err@1",
            "a=err@1%x=2",
            "seed=x",
        ] {
            assert!(Schedule::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let s = Schedule::parse("x=err@3").unwrap();
        let fired: Vec<bool> = (0..6).map(|_| s.evaluate("x").action.is_some()).collect();
        assert_eq!(fired, vec![false, false, true, false, false, false]);
    }

    #[test]
    fn first_matching_rule_wins() {
        let s = Schedule::parse("x=err@2;x=delay:1").unwrap();
        assert_eq!(s.evaluate("x").action, Some(FaultAction::DelayMs(1)));
        assert_eq!(s.evaluate("x").action, Some(FaultAction::Err));
        assert_eq!(s.evaluate("x").action, Some(FaultAction::DelayMs(1)));
    }

    #[test]
    fn unscheduled_sites_are_not_counted() {
        let s = Schedule::parse("x=err@1").unwrap();
        for _ in 0..5 {
            let e = s.evaluate("unrelated.site");
            assert_eq!(e.hit, 0);
            assert_eq!(e.action, None);
        }
    }

    #[test]
    fn probability_sequence_matches_seed_and_roughly_matches_rate() {
        let a = Schedule::parse("x=err@10%seed=9").unwrap();
        let b = Schedule::parse("x=err@10%seed=9").unwrap();
        let c = Schedule::parse("x=err@10%seed=10").unwrap();
        let seq = |s: &Schedule| -> Vec<bool> {
            (0..2000)
                .map(|_| s.evaluate("x").action.is_some())
                .collect()
        };
        let sa = seq(&a);
        assert_eq!(sa, seq(&b), "same seed, same sequence");
        assert_ne!(sa, seq(&c), "different seed, different sequence");
        let rate = sa.iter().filter(|f| **f).count() as f64 / sa.len() as f64;
        assert!((0.05..0.2).contains(&rate), "rate {rate} far from 10%");
    }

    #[test]
    fn injection_sequence_is_thread_count_independent() {
        // The satellite guarantee: the same spec + seed yields the same
        // per-hit decisions whether one thread or eight hammer the site.
        let spec = "x=err@1.5%seed=42;x=corrupt@7;y=panic@3%seed=5";
        let collect = |threads: usize| -> Map<(String, u64), Option<FaultAction>> {
            let s = Schedule::parse(spec).unwrap();
            let out = std::sync::Mutex::new(Map::new());
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| {
                        for _ in 0..600 / threads {
                            for site in ["x", "y"] {
                                let e = s.evaluate(site);
                                out.lock()
                                    .unwrap()
                                    .insert((site.to_owned(), e.hit), e.action);
                            }
                        }
                    });
                }
            });
            out.into_inner().unwrap()
        };
        let serial = collect(1);
        let parallel = collect(8);
        assert_eq!(serial.len(), 1200);
        assert_eq!(
            serial, parallel,
            "injection schedule leaked thread scheduling"
        );
    }

    #[test]
    fn corruption_is_deterministic_and_visible() {
        let mutate = |seed_spec: &str| -> Vec<u8> {
            let s = Schedule::parse(seed_spec).unwrap();
            let mut bytes = vec![0u8; 64];
            // Drive the site to hit 2 where the corrupt rule fires.
            let mut sink = vec![0u8; 64];
            assert_eq!(corrupt_bytes_with(&s, "x", &mut sink), Ok(false));
            assert_eq!(corrupt_bytes_with(&s, "x", &mut bytes), Ok(true));
            bytes
        };
        let a = mutate("x=corrupt@2");
        let b = mutate("x=corrupt@2");
        assert_eq!(a, b, "same schedule, same damage");
        assert_ne!(a, vec![0u8; 64], "corruption must actually flip bytes");
    }

    /// Test-only analogue of [`corrupt_bytes`] against an explicit
    /// schedule (the public helper goes through the process global).
    fn corrupt_bytes_with(s: &Schedule, site: &str, bytes: &mut [u8]) -> Result<bool, FaultError> {
        let eval = s.evaluate(site);
        match eval.action {
            Some(FaultAction::Corrupt) => {
                for i in 0..3u64 {
                    let pos =
                        splitmix64(eval.hit ^ site_hash(site) ^ (i << 32)) as usize % bytes.len();
                    bytes[pos] ^= 0xa5;
                }
                Ok(true)
            }
            None => Ok(false),
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn global_helpers_are_noops_without_env() {
        // The test harness never sets SMS_FAULTS, so the global schedule
        // must be disarmed and every helper free.
        assert!(!enabled());
        assert_eq!(check("cache.write"), Ok(()));
        assert!(check_io("cache.write").is_ok());
        let mut bytes = vec![1, 2, 3];
        assert_eq!(corrupt_bytes("cache.write", &mut bytes), Ok(false));
        assert_eq!(bytes, vec![1, 2, 3]);
    }
}
