//! Testing the paper's future-work conjecture (§V-E6): scale-model
//! simulation should work for *data-parallel multi-threaded* workloads
//! (same code, different data, no communication) about as well as it does
//! for homogeneous multiprogram mixes.
//!
//! For a few benchmarks this example runs both workload classes on the
//! single-core PRS scale model and the 32-core target and compares the
//! No-Extrapolation error side by side.
//!
//! ```text
//! cargo run --release --example multithreaded_scaling
//! ```

use sms_core::scaling::{scale_config, ScalingPolicy};
use sms_sim::config::SystemConfig;
use sms_sim::system::{MulticoreSystem, RunSpec};
use sms_sim::trace::InstructionSource;
use sms_workloads::mix::MixSpec;
use sms_workloads::multithreaded::data_parallel_sources;
use sms_workloads::spec::by_name;

fn mean_ipc(cfg: SystemConfig, sources: Vec<Box<dyn InstructionSource>>, spec: RunSpec) -> f64 {
    let mut sys = MulticoreSystem::new(cfg, sources).expect("valid setup");
    let r = sys.run(spec).expect("non-empty budget");
    r.cores.iter().map(|c| c.ipc).sum::<f64>() / r.cores.len() as f64
}

fn main() {
    let spec = RunSpec::with_default_warmup(300_000);
    let target = SystemConfig::target_32core();
    let ss = scale_config(&target, 1, ScalingPolicy::prs());

    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12}",
        "benchmark", "mp err", "mt err", "mt target", "mt 1-core"
    );
    for name in ["roms_r", "wrf_r", "cactuBSSN_r", "xz_r"] {
        let profile = by_name(name).expect("known benchmark");

        // Multiprogram (paper's homogeneous mixes).
        let mp_ss = mean_ipc(
            ss.clone(),
            MixSpec::homogeneous(name, 1, 43).sources(),
            spec,
        );
        let mp_tgt = mean_ipc(
            target.clone(),
            MixSpec::homogeneous(name, 32, 43).sources(),
            spec,
        );
        let mp_err = (mp_ss - mp_tgt).abs() / mp_tgt;

        // Data-parallel multi-threaded: shared read-only dataset + code.
        let mt_ss = mean_ipc(ss.clone(), data_parallel_sources(&profile, 1, 43), spec);
        let mt_tgt = mean_ipc(
            target.clone(),
            data_parallel_sources(&profile, 32, 43),
            spec,
        );
        let mt_err = (mt_ss - mt_tgt).abs() / mt_tgt;

        println!(
            "{name:<14} {:>11.1}% {:>11.1}% {mt_tgt:>12.4} {mt_ss:>12.4}",
            mp_err * 100.0,
            mt_err * 100.0
        );
    }
    println!();
    println!("If the data-parallel (mt) errors track the multiprogram (mp)");
    println!("errors, the paper's conjecture holds on this substrate: shared");
    println!("read-only data behaves no worse than private copies, because");
    println!("per-core resource shares still govern the slowdown.");
}
