//! PRS versus NRS scale-model construction (the paper's Fig 3 story in
//! miniature): for a compute-bound and two memory-bound benchmarks,
//! compare the single-core scale model's prediction error when shared
//! resources are kept at target size (NRS) versus scaled proportionally
//! (PRS).
//!
//! ```text
//! cargo run --release --example prs_vs_nrs
//! ```

use sms_core::scaling::{scale_config, ScalingPolicy};
use sms_sim::config::SystemConfig;
use sms_sim::system::{MulticoreSystem, RunSpec};
use sms_workloads::mix::MixSpec;

fn run_ipc(cfg: SystemConfig, mix: &MixSpec, spec: RunSpec) -> f64 {
    let mut sys = MulticoreSystem::new(cfg, mix.sources()).expect("valid setup");
    let r = sys.run(spec).expect("non-empty budget");
    r.cores.iter().map(|c| c.ipc).sum::<f64>() / r.cores.len() as f64
}

fn main() {
    let spec = RunSpec::with_default_warmup(300_000);
    let target = SystemConfig::target_32core();

    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "benchmark", "target", "NRS-1c", "PRS-1c", "NRS err", "PRS err"
    );
    for name in ["leela_r", "xz_r", "lbm_r", "mcf_r"] {
        let truth = run_ipc(target.clone(), &MixSpec::homogeneous(name, 32, 42), spec);
        let mix1 = MixSpec::homogeneous(name, 1, 42);
        let nrs = run_ipc(scale_config(&target, 1, ScalingPolicy::nrs()), &mix1, spec);
        let prs = run_ipc(scale_config(&target, 1, ScalingPolicy::prs()), &mix1, spec);
        println!(
            "{name:<14} {truth:>9.4} {nrs:>9.4} {prs:>9.4} {:>9.1}% {:>9.1}%",
            (nrs - truth).abs() / truth * 100.0,
            (prs - truth).abs() / truth * 100.0
        );
    }
    println!();
    println!("NRS hands the lone benchmark the whole 32 MB LLC and 128 GB/s of");
    println!("DRAM, so it wildly overpredicts memory-bound performance; PRS");
    println!("keeps per-core shares constant and stays close (paper Fig 3).");
}
