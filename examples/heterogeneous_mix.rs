//! Heterogeneous multiprogram mixes: simulate a random 8-program mix on
//! an 8-core PRS scale model, report per-application slowdowns versus
//! running alone, and compute the mix's STP (system throughput).
//!
//! ```text
//! cargo run --release --example heterogeneous_mix
//! ```

use sms_core::metrics::stp;
use sms_core::scaling::{scale_config, ScalingPolicy};
use sms_sim::config::SystemConfig;
use sms_sim::system::{MulticoreSystem, RunSpec};
use sms_workloads::mix::MixSpec;
use sms_workloads::spec::suite;

fn main() {
    let spec = RunSpec::with_default_warmup(300_000);
    let target = SystemConfig::target_32core();
    let machine = scale_config(&target, 8, ScalingPolicy::prs());
    let ss_machine = scale_config(&target, 1, ScalingPolicy::prs());

    let mix = MixSpec::random(&suite(), 8, 2024);
    println!("mix: {}", mix.benchmarks.join(", "));
    println!("machine: {}\n", machine.summary());

    // Solo (single-core scale model) IPCs as the normalization baseline.
    let mut solo = Vec::new();
    for name in &mix.benchmarks {
        let m = MixSpec::homogeneous(name, 1, mix.seed);
        let mut sys = MulticoreSystem::new(ss_machine.clone(), m.sources()).expect("valid");
        let r = sys.run(spec).expect("runs");
        solo.push(r.cores[0].ipc);
    }

    // Co-run the mix.
    let mut sys = MulticoreSystem::new(machine, mix.sources()).expect("valid");
    let r = sys.run(spec).expect("runs");

    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>10}",
        "application", "solo IPC", "mix IPC", "slowdown", "BW (GB/s)"
    );
    let mix_ipcs: Vec<f64> = r.cores.iter().map(|c| c.ipc).collect();
    for ((c, &s), name) in r.cores.iter().zip(&solo).zip(&mix.benchmarks) {
        println!(
            "{name:<14} {s:>9.4} {:>9.4} {:>8.2}x {:>10.2}",
            c.ipc,
            s / c.ipc,
            c.bandwidth_gbps
        );
    }
    println!(
        "\nSTP = {:.2} (of {} cores) | aggregate DRAM bandwidth {:.1} GB/s",
        stp(&mix_ipcs, &solo),
        mix.benchmarks.len(),
        r.total_bandwidth_gbps
    );
    println!("memory-bound applications slow each other down the most; that");
    println!("interference is exactly what the ML extrapolation models learn.");
}
