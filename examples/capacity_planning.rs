//! Capacity planning with ML-based regression — the paper's headline use
//! case: predict how an application will perform on a 32-core machine
//! **without ever simulating that machine**, using only scale models of
//! at most 16 cores.
//!
//! The flow is exactly §III-B2:
//! 1. train per-scale-model predictors on a set of known benchmarks,
//! 2. predict the unseen application's IPC on each multi-core scale model,
//! 3. fit a logarithmic curve over core count and extrapolate to 32.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use sms_core::features::{feature_vector, FeatureMode, SsMeasurement};
use sms_core::predictor::{MlKind, ModelParams};
use sms_core::regressor::{RegressionExtrapolator, ScaleModelTraining};
use sms_core::scaling::{scale_config, ScalingPolicy};
use sms_ml::fit::CurveModel;
use sms_sim::config::SystemConfig;
use sms_sim::system::{MulticoreSystem, RunSpec};
use sms_workloads::mix::MixSpec;
use sms_workloads::spec::suite;

const MS_CORES: [u32; 4] = [2, 4, 8, 16];
const UNSEEN: &str = "fotonik3d_r";

fn run(cfg: SystemConfig, mix: &MixSpec, spec: RunSpec) -> (f64, f64) {
    let mut sys = MulticoreSystem::new(cfg, mix.sources()).expect("valid setup");
    let r = sys.run(spec).expect("non-empty budget");
    let ipc = r.cores.iter().map(|c| c.ipc).sum::<f64>() / r.cores.len() as f64;
    let bw = r.cores.iter().map(|c| c.bandwidth_gbps).sum::<f64>() / r.cores.len() as f64;
    (ipc, bw)
}

fn main() {
    let spec = RunSpec::with_default_warmup(200_000);
    let target = SystemConfig::target_32core();
    let mode = FeatureMode::IpcBandwidth;

    // Train on a handful of known benchmarks (excluding the app of
    // interest — it must be previously unseen).
    let training_benchmarks: Vec<_> = suite()
        .into_iter()
        .filter(|p| p.name != UNSEEN)
        .take(12)
        .collect();

    println!(
        "measuring {} training benchmarks on scale models up to 16 cores...",
        training_benchmarks.len()
    );

    // Single-core measurements for everyone (features).
    let ss_cfg = scale_config(&target, 1, ScalingPolicy::prs());
    let mut ss: Vec<SsMeasurement> = Vec::new();
    for b in &training_benchmarks {
        let (ipc, bandwidth) = run(ss_cfg.clone(), &MixSpec::homogeneous(b.name, 1, 42), spec);
        ss.push(SsMeasurement { ipc, bandwidth });
    }

    // Multi-core scale-model measurements (regression targets).
    let mut training = Vec::new();
    for &cores in &MS_CORES {
        let machine = scale_config(&target, cores, ScalingPolicy::prs());
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        for (b, own) in training_benchmarks.iter().zip(&ss) {
            let (ipc, _) = run(
                machine.clone(),
                &MixSpec::homogeneous(b.name, cores as usize, 42),
                spec,
            );
            rows.push(feature_vector(
                mode,
                *own,
                own.bandwidth * f64::from(cores - 1),
            ));
            targets.push(ipc);
        }
        training.push(ScaleModelTraining {
            cores,
            rows,
            targets,
        });
    }

    let extrapolator = RegressionExtrapolator::train(
        MlKind::Svm,
        CurveModel::Logarithmic,
        &training,
        &ModelParams::default(),
        7,
    );

    // The unseen application: one cheap single-core run, then extrapolate.
    let (ipc_ss, bw_ss) = run(ss_cfg, &MixSpec::homogeneous(UNSEEN, 1, 42), spec);
    let own = SsMeasurement {
        ipc: ipc_ss,
        bandwidth: bw_ss,
    };
    let rows: Vec<Vec<f64>> = MS_CORES
        .iter()
        .map(|&c| feature_vector(mode, own, bw_ss * f64::from(c - 1)))
        .collect();
    let predicted = extrapolator.predict(&rows, target.num_cores);

    println!("\napplication of interest: {UNSEEN}");
    println!("single-core scale model: IPC {ipc_ss:.4}, BW {bw_ss:.2} GB/s");
    for (c, p) in extrapolator.scale_model_predictions(&rows) {
        println!("predicted IPC on {c:>2}-core scale model: {p:.4}");
    }
    println!("=> extrapolated 32-core per-core IPC: {predicted:.4}");

    // Verify against the (otherwise unnecessary) target simulation.
    let (actual, _) = run(target, &MixSpec::homogeneous(UNSEEN, 32, 42), spec);
    println!("   actual 32-core per-core IPC      : {actual:.4}");
    println!(
        "   prediction error                  : {:.1}%",
        (predicted - actual).abs() / actual * 100.0
    );
    println!("\nNo 32-core simulation was used for training or prediction —");
    println!("that is the practical appeal of ML-based regression (§III-B2).");
}
