//! Quickstart: build the 32-core target system, derive its single-core
//! PRS scale model, simulate one benchmark on both, and compare the
//! scale model's (No-Extrapolation) prediction against the truth.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sms_core::scaling::{scale_config, ScalingPolicy};
use sms_sim::config::SystemConfig;
use sms_sim::system::{MulticoreSystem, RunSpec};
use sms_workloads::mix::MixSpec;

fn main() -> Result<(), sms_sim::error::SimError> {
    let benchmark = "xz_r";
    let budget = RunSpec::with_default_warmup(300_000);

    // The paper's Table II target: 32 OoO cores, 32 MB NUCA LLC, 4x8 mesh,
    // 128 GB/s DRAM.
    let target = SystemConfig::target_32core();
    println!("target     : {}", target.summary());

    // Proportional Resource Scaling keeps per-core shares constant: the
    // single-core scale model gets 1 MB of LLC and 4 GB/s of DRAM.
    let scale_model = scale_config(&target, 1, ScalingPolicy::prs());
    println!("scale model: {}", scale_model.summary());

    // Simulate the benchmark alone on the scale model...
    let mix1 = MixSpec::homogeneous(benchmark, 1, 42);
    let mut sm_sys = MulticoreSystem::new(scale_model, mix1.sources())?;
    let sm = sm_sys.run(budget)?;
    let predicted = sm.cores[0].ipc;

    // ...and 32 co-running instances on the target (the expensive run the
    // methodology avoids).
    let mix32 = MixSpec::homogeneous(benchmark, 32, 42);
    let mut tgt_sys = MulticoreSystem::new(target, mix32.sources())?;
    let tgt = tgt_sys.run(budget)?;
    let actual = tgt.cores.iter().map(|c| c.ipc).sum::<f64>() / tgt.cores.len() as f64;

    println!();
    println!("benchmark          : {benchmark}");
    println!(
        "scale-model IPC    : {predicted:.4} (simulated in {:.2}s)",
        sm.host_seconds
    );
    println!(
        "target per-core IPC: {actual:.4} (simulated in {:.2}s)",
        tgt.host_seconds
    );
    println!(
        "No-Extrapolation error: {:.1}%  |  simulation speedup: {:.1}x",
        (predicted - actual).abs() / actual * 100.0,
        tgt.host_seconds / sm.host_seconds
    );
    println!();
    println!("ML-based extrapolation (see examples/capacity_planning.rs) trims");
    println!("this error further without ever simulating the target.");
    Ok(())
}
