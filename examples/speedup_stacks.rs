//! Speedup stacks across scale models (paper §V-E6, future work): break
//! each scale model's CPI into dispatch / branch / fetch / memory
//! components, watch how each component scales with core count, and
//! extrapolate the stack to the 32-core target.
//!
//! ```text
//! cargo run --release --example speedup_stacks [benchmark]
//! ```

use sms_core::scaling::{scale_config, ScalingPolicy};
use sms_core::stacks::{speedup_stack, CycleStack, StackSample};
use sms_sim::config::SystemConfig;
use sms_sim::system::{MulticoreSystem, RunSpec};
use sms_workloads::mix::MixSpec;

fn main() {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "roms_r".into());
    let spec = RunSpec::with_default_warmup(300_000);
    let target = SystemConfig::target_32core();

    let measure = |cores: u32| -> (StackSample, f64) {
        let machine = if cores == target.num_cores {
            target.clone()
        } else {
            scale_config(&target, cores, ScalingPolicy::prs())
        };
        let mix = MixSpec::homogeneous(&bench, cores as usize, 42);
        let mut sys = MulticoreSystem::new(machine, mix.sources()).expect("valid setup");
        let r = sys.run(spec).expect("non-empty budget");
        let core = &r.cores[0];
        let cpi = CycleStack::from_core(core).per_instruction(core.instructions);
        (StackSample { cores, cpi }, core.ipc)
    };

    println!("benchmark: {bench}\n");
    println!(
        "{:>6} {:>10} {:>9} {:>8} {:>9} {:>8} {:>7}",
        "cores", "dispatch", "branch", "fetch", "memory", "CPI", "IPC"
    );
    let mut samples = Vec::new();
    for cores in [1u32, 2, 4, 8, 16] {
        let (s, ipc) = measure(cores);
        println!(
            "{:>6} {:>10.3} {:>9.3} {:>8.3} {:>9.3} {:>8.3} {:>7.3}",
            cores,
            s.cpi.dispatch,
            s.cpi.branch,
            s.cpi.fetch,
            s.cpi.memory,
            s.cpi.total(),
            ipc
        );
        if cores > 1 {
            samples.push(s);
        }
    }

    let stack = speedup_stack(samples, target.num_cores);
    let e = &stack.extrapolated;
    println!(
        "{:>6} {:>10.3} {:>9.3} {:>8.3} {:>9.3} {:>8.3} {:>7.3}   <- extrapolated",
        32,
        e.dispatch,
        e.branch,
        e.fetch,
        e.memory,
        e.total(),
        stack.predicted_ipc()
    );

    let (actual, ipc) = measure(32);
    println!(
        "{:>6} {:>10.3} {:>9.3} {:>8.3} {:>9.3} {:>8.3} {:>7.3}   <- simulated",
        32,
        actual.cpi.dispatch,
        actual.cpi.branch,
        actual.cpi.fetch,
        actual.cpi.memory,
        actual.cpi.total(),
        ipc
    );
    println!(
        "\nIPC prediction error via speedup stack: {:.1}%",
        (stack.predicted_ipc() - ipc).abs() / ipc * 100.0
    );
    println!("the memory component carries (almost) all of the scaling — the");
    println!("observation behind extending scale models to multi-threaded codes.");
}
