//! Host crate for the workspace's cross-crate integration tests; the
//! tests themselves live under `tests/tests/`.

#![forbid(unsafe_code)]
