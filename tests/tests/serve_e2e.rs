//! End-to-end test of the prediction service over real TCP: train an
//! artifact, boot the server on an ephemeral port, and exercise every
//! endpoint with a plain `TcpStream` HTTP client — including cache hits,
//! micro-batching, load shedding, and graceful shutdown.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use sms_core::artifact::{train_artifact, ModelArtifact};
use sms_core::pipeline::{DirectSim, ExperimentConfig};
use sms_core::predictor::{MlKind, ModelParams};
use sms_core::scaling::target_config;
use sms_ml::fit::CurveModel;
use sms_serve::{serve, ModelRegistry, ServerConfig};
use sms_sim::system::RunSpec;
use sms_workloads::spec::by_name;

const TRAINING: [&str; 4] = ["leela_r", "xz_r", "gcc_r", "roms_r"];

fn trained(name: &str) -> ModelArtifact {
    let cfg = ExperimentConfig {
        target: target_config(8),
        ms_cores: vec![2, 4],
        spec: RunSpec {
            warmup_instructions: 5_000,
            measure_instructions: 20_000,
        },
        ..ExperimentConfig::default()
    };
    let training: Vec<_> = TRAINING
        .iter()
        .map(|n| by_name(n).expect("known"))
        .collect();
    train_artifact(
        &mut DirectSim,
        cfg,
        &training,
        MlKind::Svm,
        CurveModel::Logarithmic,
        &ModelParams::default(),
        name,
    )
    .expect("training succeeds")
}

struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn json(&self) -> serde_json::Value {
        serde_json::from_str(&self.body)
            .unwrap_or_else(|e| panic!("bad JSON body ({e}): {}", self.body))
    }
}

/// Minimal HTTP/1.1 client: one request, read until the server closes.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> Reply {
    http_with_headers(addr, method, path, &[], body)
}

/// [`http`] with extra request headers (e.g. `x-sms-deadline-ms`).
fn http_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra: &[(&str, &str)],
    body: &str,
) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut request = format!("{method} {path} HTTP/1.1\r\nhost: e2e\r\n");
    for (name, value) in extra {
        request.push_str(&format!("{name}: {value}\r\n"));
    }
    request.push_str(&format!("content-length: {}\r\n\r\n{body}", body.len()));
    stream.write_all(request.as_bytes()).unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");

    let (head, body) = text.split_once("\r\n\r\n").expect("header/body split");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let headers = lines
        .filter_map(|l| l.split_once(": "))
        .map(|(k, v)| (k.to_ascii_lowercase(), v.to_owned()))
        .collect();
    Reply {
        status,
        headers,
        body: body.to_owned(),
    }
}

fn predict_body(model: &str, mix: &[&str], target_cores: u32, delay_ms: u64) -> String {
    serde_json::json!({
        "model": model,
        "mix": mix,
        "target_cores": target_cores,
        "delay_ms": delay_ms,
    })
    .to_string()
}

#[test]
fn all_endpoints_over_real_tcp() {
    let artifact = trained("e2e");
    let registry = ModelRegistry::in_memory();
    registry.insert(artifact.clone());
    let handle = serve(
        registry,
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("server boots");
    let addr = handle.addr();

    // Liveness.
    let health = http(addr, "GET", "/healthz", "");
    assert_eq!(health.status, 200);
    assert_eq!(health.json()["status"], "ok");
    assert_eq!(health.json()["models"], 1);

    // Model catalog.
    let models = http(addr, "GET", "/models", "");
    assert_eq!(models.status, 200);
    let catalog = models.json();
    assert_eq!(catalog["models"][0]["name"], "e2e");
    assert_eq!(catalog["models"][0]["kind"], "SVM");
    assert_eq!(catalog["models"][0]["benchmarks"], TRAINING.len());

    // A prediction over the wire equals the in-process one exactly.
    let mix = ["leela_r", "xz_r"];
    let first = http(addr, "POST", "/predict", &predict_body("e2e", &mix, 8, 0));
    assert_eq!(first.status, 200, "{}", first.body);
    assert_eq!(first.header("x-cache"), Some("miss"));
    let served = first.json();
    let mix_owned: Vec<String> = mix.iter().map(|s| (*s).to_owned()).collect();
    let local = artifact.predict_mix(&mix_owned, Some(8)).unwrap();
    for (i, expected) in local.per_core_ipc.iter().enumerate() {
        let got = served["per_core_ipc"][i].as_f64().unwrap();
        assert!(
            (got - expected).abs() <= 1e-12,
            "core {i}: served {got} vs local {expected}"
        );
    }
    assert!((served["stp"].as_f64().unwrap() - local.stp).abs() <= 1e-12);
    assert_eq!(served["model"], "e2e");

    // The identical request — even with reordered fields — is a cache hit
    // with an identical body.
    let reordered = r#"{"target_cores":8,"mix":["leela_r","xz_r"],"delay_ms":0,"model":"e2e"}"#;
    let second = http(addr, "POST", "/predict", reordered);
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-cache"), Some("hit"));
    assert_eq!(second.body, first.body);

    // Error paths.
    let unknown_model = http(addr, "POST", "/predict", &predict_body("nope", &mix, 8, 0));
    assert_eq!(unknown_model.status, 404);
    let unknown_bench = http(
        addr,
        "POST",
        "/predict",
        &predict_body("e2e", &["nope_r"], 8, 0),
    );
    assert_eq!(unknown_bench.status, 400);
    let empty_mix = http(addr, "POST", "/predict", r#"{"model":"e2e","mix":[]}"#);
    assert_eq!(empty_mix.status, 400);
    let bad_cores = http(addr, "POST", "/predict", &predict_body("e2e", &mix, 0, 0));
    assert_eq!(bad_cores.status, 400);
    let bad_json = http(addr, "POST", "/predict", "{not json");
    assert_eq!(bad_json.status, 400);
    let bad_path = http(addr, "GET", "/nope", "");
    assert_eq!(bad_path.status, 404);
    let bad_method = http(addr, "PUT", "/predict", "");
    assert_eq!(bad_method.status, 405);

    // Metrics reflect all of the above. `/metrics` speaks the Prometheus
    // text exposition format...
    let metrics = http(addr, "GET", "/metrics", "");
    assert_eq!(metrics.status, 200);
    assert_eq!(
        metrics.header("content-type"),
        Some("text/plain; version=0.0.4")
    );
    assert!(metrics
        .body
        .contains("# TYPE sms_serve_requests_total counter"));
    assert!(metrics.body.contains("# HELP sms_serve_requests_total"));
    assert!(metrics
        .body
        .contains(r#"sms_serve_endpoint_requests_total{endpoint="predict"} 7"#));
    assert!(metrics
        .body
        .contains(r#"sms_serve_cache_requests_total{result="hit"} 1"#));
    assert!(metrics
        .body
        .contains(r#"sms_serve_cache_requests_total{result="miss"} 1"#));
    assert!(metrics.body.contains("sms_serve_bad_requests_total 7"));
    assert!(metrics
        .body
        .contains("# TYPE sms_serve_predict_latency_micros histogram"));
    assert!(metrics
        .body
        .contains(r#"sms_serve_predict_latency_micros_bucket{le="+Inf"}"#));

    // ...while `/metrics.json` keeps the JSON snapshot contract.
    let metrics_json = http(addr, "GET", "/metrics.json", "");
    assert_eq!(metrics_json.status, 200);
    let m = metrics_json.json();
    assert!(m["requests_total"].as_u64().unwrap() >= 10);
    assert_eq!(m["predict_requests"].as_u64().unwrap(), 7);
    assert_eq!(m["cache_hits"].as_u64().unwrap(), 1);
    assert_eq!(m["cache_misses"].as_u64().unwrap(), 1);
    assert!((m["cache_hit_rate"].as_f64().unwrap() - 0.5).abs() < 1e-12);
    // Five malformed predicts plus the 404 path and the 405 method.
    assert_eq!(m["bad_requests"].as_u64().unwrap(), 7);
    assert_eq!(m["shed_total"].as_u64().unwrap(), 0);
    assert!(m["latency_seconds"]["p50"].as_f64().unwrap() >= 0.0);
    assert!(m["uptime_seconds"].as_f64().unwrap() >= 0.0);

    // Graceful shutdown over the wire; join() must return.
    let bye = http(addr, "POST", "/shutdown", "");
    assert_eq!(bye.status, 200);
    assert_eq!(bye.json()["status"], "shutting-down");
    handle.join();
}

#[test]
fn full_queue_sheds_with_503_and_retry_after() {
    let registry = ModelRegistry::in_memory();
    registry.insert(trained("shed"));
    // One worker, a one-slot queue, and no batching: the third in-flight
    // prediction must be shed.
    let handle = serve(
        registry,
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 1,
            queue_capacity: 1,
            batch_max: 1,
            ..ServerConfig::default()
        },
    )
    .expect("server boots");
    let addr = handle.addr();

    // Distinct mixes dodge the response cache; delay_ms holds the single
    // worker busy long enough to make the timeline deterministic.
    let bodies = [
        predict_body("shed", &["leela_r"], 8, 1_000),
        predict_body("shed", &["xz_r"], 8, 1_000),
        predict_body("shed", &["gcc_r"], 8, 1_000),
    ];
    let mut replies = Vec::new();
    let mut workers = Vec::new();
    for (i, body) in bodies.into_iter().enumerate() {
        workers.push(std::thread::spawn(move || {
            http(addr, "POST", "/predict", &body)
        }));
        // Stagger: r1 is being predicted, r2 queued, r3 shed.
        if i < 2 {
            std::thread::sleep(Duration::from_millis(250));
        }
    }
    for w in workers {
        replies.push(w.join().unwrap());
    }

    assert_eq!(replies[0].status, 200, "{}", replies[0].body);
    assert_eq!(replies[1].status, 200, "{}", replies[1].body);
    assert_eq!(replies[2].status, 503, "{}", replies[2].body);
    assert_eq!(replies[2].header("retry-after"), Some("1"));

    let m = http(addr, "GET", "/metrics.json", "").json();
    assert_eq!(m["shed_total"].as_u64().unwrap(), 1);
    assert_eq!(m["cache_misses"].as_u64().unwrap(), 2);
    handle.shutdown_and_join();
}

#[test]
fn deadline_header_bounds_a_slow_prediction_with_504() {
    let registry = ModelRegistry::in_memory();
    registry.insert(trained("deadline"));
    let handle = serve(
        registry,
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .expect("server boots");
    let addr = handle.addr();

    // A 400ms simulated model latency against a 50ms deadline: the
    // prediction finishes after the budget and must be answered 504,
    // attributed to the predict stage.
    let late = http_with_headers(
        addr,
        "POST",
        "/predict",
        &[("x-sms-deadline-ms", "50")],
        &predict_body("deadline", &["leela_r"], 8, 400),
    );
    assert_eq!(late.status, 504, "{}", late.body);
    assert_eq!(late.header("x-sms-deadline-stage"), Some("predict"));

    // A garbage deadline header is a client error, not a default.
    let garbage = http_with_headers(
        addr,
        "POST",
        "/predict",
        &[("x-sms-deadline-ms", "soon")],
        &predict_body("deadline", &["leela_r"], 8, 0),
    );
    assert_eq!(garbage.status, 400, "{}", garbage.body);

    // The same slow request under a generous deadline succeeds: the 504
    // above was the deadline's doing, not the request's.
    let relaxed = http_with_headers(
        addr,
        "POST",
        "/predict",
        &[("x-sms-deadline-ms", "30000")],
        &predict_body("deadline", &["leela_r"], 8, 400),
    );
    assert_eq!(relaxed.status, 200, "{}", relaxed.body);
    assert_eq!(relaxed.header("x-sms-degraded"), None);

    let m = http(addr, "GET", "/metrics.json", "").json();
    assert_eq!(m["deadline_exceeded"]["predict"].as_u64().unwrap(), 1);
    assert_eq!(m["deadline_exceeded"]["queue"].as_u64().unwrap(), 0);
    assert_eq!(m["deadline_exceeded"]["header"].as_u64().unwrap(), 0);
    handle.shutdown_and_join();
}

#[test]
fn same_model_requests_batch_behind_a_slow_one() {
    let registry = ModelRegistry::in_memory();
    registry.insert(trained("batch"));
    let handle = serve(
        registry,
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 1,
            queue_capacity: 16,
            batch_max: 8,
            ..ServerConfig::default()
        },
    )
    .expect("server boots");
    let addr = handle.addr();

    // A slow request occupies the only worker; three fast ones for the
    // same model pile up behind it and are answered as one batch.
    let blocker = std::thread::spawn(move || {
        http(
            addr,
            "POST",
            "/predict",
            &predict_body("batch", &["roms_r"], 8, 800),
        )
    });
    std::thread::sleep(Duration::from_millis(250));
    let mut followers = Vec::new();
    for mix in [["leela_r"], ["xz_r"], ["gcc_r"]] {
        let body = predict_body("batch", &mix, 8, 0);
        followers.push(std::thread::spawn(move || {
            http(addr, "POST", "/predict", &body)
        }));
    }
    assert_eq!(blocker.join().unwrap().status, 200);
    for f in followers {
        assert_eq!(f.join().unwrap().status, 200);
    }

    let m = http(addr, "GET", "/metrics.json", "").json();
    // The three followers were drained behind one dequeued job: two of
    // them (at least) rode along in its batch.
    assert!(
        m["batched_requests"].as_u64().unwrap() >= 2,
        "batched_requests = {}",
        m["batched_requests"]
    );
    assert_eq!(m["shed_total"].as_u64().unwrap(), 0);
    handle.shutdown_and_join();
}
