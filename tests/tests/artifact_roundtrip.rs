//! Golden round-trip tests for persisted model artifacts: train on the
//! real simulator, save to disk, load, and require identical predictions
//! — plus rejection of corrupted and version-mismatched files.

use std::path::PathBuf;

use sms_core::artifact::{train_artifact, ArtifactError, ModelArtifact, ARTIFACT_SCHEMA_VERSION};
use sms_core::pipeline::{DirectSim, ExperimentConfig};
use sms_core::predictor::{MlKind, ModelParams};
use sms_core::scaling::target_config;
use sms_core::session::ScaleModelSession;
use sms_ml::fit::CurveModel;
use sms_sim::system::RunSpec;
use sms_workloads::spec::by_name;

const TRAINING: [&str; 4] = ["leela_r", "xz_r", "gcc_r", "roms_r"];

fn small_cfg() -> ExperimentConfig {
    ExperimentConfig {
        target: target_config(8),
        ms_cores: vec![2, 4],
        spec: RunSpec {
            warmup_instructions: 5_000,
            measure_instructions: 20_000,
        },
        ..ExperimentConfig::default()
    }
}

fn trained(name: &str) -> ModelArtifact {
    let training: Vec<_> = TRAINING
        .iter()
        .map(|n| by_name(n).expect("known"))
        .collect();
    train_artifact(
        &mut DirectSim,
        small_cfg(),
        &training,
        MlKind::Svm,
        CurveModel::Logarithmic,
        &ModelParams::default(),
        name,
    )
    .expect("training on the real simulator succeeds")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sms-artifact-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn golden_round_trip_preserves_predictions() {
    let dir = scratch_dir("golden");
    let artifact = trained("golden");
    let path = artifact.save_in(&dir).unwrap();
    let loaded = ModelArtifact::load(&path).unwrap();
    assert_eq!(loaded, artifact, "full model state must survive the disk");

    let mix: Vec<String> = ["leela_r", "xz_r", "gcc_r", "leela_r"]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    let before = artifact.predict_mix(&mix, Some(8)).unwrap();
    let after = loaded.predict_mix(&mix, Some(8)).unwrap();
    assert_eq!(before.per_core_ipc.len(), 4);
    for (a, b) in before.per_core_ipc.iter().zip(&after.per_core_ipc) {
        assert!(a.is_finite() && *a > 0.0);
        assert!((a - b).abs() <= 1e-12, "prediction drifted: {a} vs {b}");
    }
    assert!((before.stp - after.stp).abs() <= 1e-12);
    assert_eq!(before.cv_error, after.cv_error);

    // Saving the loaded artifact again is byte-identical (deterministic
    // sorted-key encoding), and top-level keys are sorted.
    let first = std::fs::read_to_string(&path).unwrap();
    loaded.save(&path).unwrap();
    let second = std::fs::read_to_string(&path).unwrap();
    assert_eq!(first, second);
    let pos = |k: &str| {
        first
            .find(&format!("\"{k}\""))
            .unwrap_or_else(|| panic!("{k} missing"))
    };
    assert!(pos("checksum") < pos("name"));
    assert!(pos("name") < pos("payload"));
    assert!(pos("payload") < pos("schema"));
    assert!(pos("schema") < pos("schema_version"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn artifact_training_matches_in_process_session() {
    // `sms train` and the in-process session API share one training path
    // (same training sets, same fixed seed), so the persisted extrapolator
    // must equal the session's bit for bit.
    let artifact = trained("parity");
    let training: Vec<_> = TRAINING
        .iter()
        .map(|n| by_name(n).expect("known"))
        .collect();
    let session = ScaleModelSession::train(&mut DirectSim, small_cfg(), &training).unwrap();
    assert_eq!(session.extrapolator(), &artifact.payload.extrapolator);
}

#[test]
fn corrupted_and_mismatched_files_are_rejected() {
    let dir = scratch_dir("reject");
    let artifact = trained("reject");
    let path = artifact.save_in(&dir).unwrap();
    let original: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();

    // Payload tampering flips the checksum.
    let mut tampered = original.clone();
    tampered["payload"]["cv_error"] = serde_json::json!(0.123456);
    let tampered_path = dir.join("tampered.json");
    std::fs::write(&tampered_path, tampered.to_string()).unwrap();
    match ModelArtifact::load(&tampered_path) {
        Err(ArtifactError::ChecksumMismatch { .. }) => {}
        other => panic!("expected checksum mismatch, got {other:?}"),
    }

    // A future format version is refused, not misread.
    let mut versioned = original.clone();
    versioned["schema_version"] = serde_json::json!(999);
    let versioned_path = dir.join("versioned.json");
    std::fs::write(&versioned_path, versioned.to_string()).unwrap();
    match ModelArtifact::load(&versioned_path) {
        Err(ArtifactError::VersionMismatch {
            found: 999,
            expected,
        }) => {
            assert_eq!(expected, ARTIFACT_SCHEMA_VERSION);
        }
        other => panic!("expected version mismatch, got {other:?}"),
    }

    // A different schema tag is refused.
    let mut wrong = original;
    wrong["schema"] = serde_json::json!("not-a-model");
    let wrong_path = dir.join("wrong-schema.json");
    std::fs::write(&wrong_path, wrong.to_string()).unwrap();
    match ModelArtifact::load(&wrong_path) {
        Err(ArtifactError::SchemaMismatch { found }) => assert_eq!(found, "not-a-model"),
        other => panic!("expected schema mismatch, got {other:?}"),
    }

    // Truncated JSON is an error, not a panic.
    let broken_path = dir.join("broken.json");
    std::fs::write(&broken_path, "{\"schema\": \"sms-model-art").unwrap();
    assert!(matches!(
        ModelArtifact::load(&broken_path),
        Err(ArtifactError::Json(_))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}
