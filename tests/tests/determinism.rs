//! Determinism and reproducibility across the full stack: identical
//! seeds must give bit-identical results; different seeds must differ.

use sms_core::scaling::{scale_config, ScalingPolicy};
use sms_sim::config::SystemConfig;
use sms_sim::system::{MulticoreSystem, RunSpec};
use sms_workloads::mix::MixSpec;
use sms_workloads::spec::suite;

fn run(mix: &MixSpec, cores: u32) -> sms_sim::stats::SimResult {
    let target = SystemConfig::target_32core();
    let machine = scale_config(&target, cores, ScalingPolicy::prs());
    let mut sys = MulticoreSystem::new(machine, mix.sources()).unwrap();
    sys.run(RunSpec {
        warmup_instructions: 10_000,
        measure_instructions: 60_000,
    })
    .unwrap()
}

#[test]
fn identical_seeds_are_bit_identical() {
    let mix = MixSpec::random(&suite(), 4, 99);
    let a = run(&mix, 4);
    let b = run(&mix, 4);
    for (ca, cb) in a.cores.iter().zip(&b.cores) {
        assert_eq!(ca.cycles, cb.cycles);
        assert_eq!(ca.instructions, cb.instructions);
        assert_eq!(ca.dram_bytes, cb.dram_bytes);
    }
    assert_eq!(a.total_dram_bytes, b.total_dram_bytes);
    assert_eq!(a.noc_transfers, b.noc_transfers);
    assert_eq!(a.llc_accesses, b.llc_accesses);
}

#[test]
fn different_mix_seeds_change_results() {
    let m1 = MixSpec::homogeneous("xz_r", 2, 1);
    let m2 = MixSpec::homogeneous("xz_r", 2, 2);
    let a = run(&m1, 2);
    let b = run(&m2, 2);
    // Different starting offsets => different cycle counts (with
    // overwhelming probability).
    assert_ne!(a.cores[0].cycles, b.cores[0].cycles);
}

#[test]
fn results_identical_through_json_round_trip() {
    let mix = MixSpec::homogeneous("gcc_r", 2, 5);
    let a = run(&mix, 2);
    let json = serde_json::to_string(&a).unwrap();
    let back: sms_sim::stats::SimResult = serde_json::from_str(&json).unwrap();
    assert_eq!(a, back);
}

#[test]
fn mix_spec_round_trips_and_rebuilds_identical_sources() {
    let mix = MixSpec::random(&suite(), 8, 7);
    let json = serde_json::to_string(&mix).unwrap();
    let back: MixSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(mix, back);
    let a = run(&mix, 8);
    let b = run(&back, 8);
    assert_eq!(a.cores[0].cycles, b.cores[0].cycles);
}
