//! End-to-end integration: real simulator + real workloads + real ML,
//! at small instruction budgets so the whole flow stays fast.

use sms_core::pipeline::{
    collect_homogeneous, no_extrapolation, predict_homogeneous_loo, regress_homogeneous_loo,
    DirectSim, ExperimentConfig, TargetMetric,
};
use sms_core::predictor::{MlKind, ModelParams};
use sms_core::scaling::{scale_config, ScalingPolicy};
use sms_core::FeatureMode;
use sms_ml::fit::CurveModel;
use sms_sim::config::SystemConfig;
use sms_sim::system::RunSpec;
use sms_workloads::spec::{by_name, suite};

/// A reduced target (8 cores) keeps integration runtime low while
/// exercising the full machinery; scale models are 1/2/4 cores.
fn small_experiment() -> ExperimentConfig {
    let target = scale_config(&SystemConfig::target_32core(), 8, ScalingPolicy::prs());
    ExperimentConfig {
        target,
        policy: ScalingPolicy::prs(),
        ms_cores: vec![2, 4],
        spec: RunSpec {
            warmup_instructions: 20_000,
            measure_instructions: 100_000,
        },
        mode: FeatureMode::IpcBandwidth,
        seed: 42,
    }
}

fn subset(names: &[&str]) -> Vec<sms_workloads::spec::BenchmarkProfile> {
    names.iter().map(|n| by_name(n).expect("known")).collect()
}

#[test]
fn full_pipeline_on_real_simulator() {
    let cfg = small_experiment();
    let bench_names = [
        "exchange2_r",
        "leela_r",
        "x264_r",
        "xz_r",
        "gcc_r",
        "bwaves_r",
        "lbm_r",
        "mcf_r",
        "roms_r",
        "namd_r",
    ];
    let data = collect_homogeneous(&mut DirectSim, &cfg, &subset(&bench_names)).unwrap();
    assert_eq!(data.len(), bench_names.len());

    let truth: Vec<f64> = data.iter().map(|d| d.target_ipc).collect();
    assert!(truth.iter().all(|&t| t > 0.0 && t.is_finite()));

    // No-Extrapolation must be sane (bounded error).
    let noext = no_extrapolation(&data, TargetMetric::Ipc);
    for (p, t) in noext.iter().zip(&truth) {
        let e = (p - t).abs() / t;
        assert!(e < 2.0, "no-extrapolation error implausibly large: {e}");
    }

    // ML prediction produces finite, positive predictions.
    let pred = predict_homogeneous_loo(
        &data,
        MlKind::Svm,
        cfg.mode,
        TargetMetric::Ipc,
        &ModelParams::default(),
        cfg.target.num_cores,
        7,
    );
    for p in &pred {
        assert!(p.is_finite(), "prediction must be finite");
    }

    // ML regression likewise.
    let reg = regress_homogeneous_loo(
        &data,
        MlKind::Svm,
        CurveModel::Logarithmic,
        cfg.mode,
        TargetMetric::Ipc,
        &ModelParams::default(),
        &cfg.ms_cores,
        cfg.target.num_cores,
        7,
    );
    for r in &reg {
        assert!(r.is_finite(), "regression prediction must be finite");
    }
}

#[test]
fn prs_beats_nrs_for_memory_bound_benchmarks() {
    // Needs a long enough run for capacity effects to separate the two
    // constructions (short runs are dominated by cold misses in both).
    let spec = RunSpec {
        warmup_instructions: 100_000,
        measure_instructions: 400_000,
    };
    let target = SystemConfig::target_32core();

    let run_mean = |cfg: SystemConfig, name: &str, n: usize| -> f64 {
        let mix = sms_workloads::mix::MixSpec::homogeneous(name, n, 42);
        let mut sys = sms_sim::system::MulticoreSystem::new(cfg, mix.sources()).unwrap();
        let r = sys.run(spec).unwrap();
        r.cores.iter().map(|c| c.ipc).sum::<f64>() / r.cores.len() as f64
    };

    // Average over several memory-intensive benchmarks; individual ones
    // can tie at this budget, but the aggregate gap is robust (paper
    // Fig 3: NRS ~60% vs PRS ~15%).
    let mut e_nrs_sum = 0.0;
    let mut e_prs_sum = 0.0;
    for name in ["lbm_r", "bwaves_r", "fotonik3d_r"] {
        let truth = run_mean(target.clone(), name, 32);
        let nrs = run_mean(scale_config(&target, 1, ScalingPolicy::nrs()), name, 1);
        let prs = run_mean(scale_config(&target, 1, ScalingPolicy::prs()), name, 1);
        e_nrs_sum += (nrs - truth).abs() / truth;
        e_prs_sum += (prs - truth).abs() / truth;
    }
    assert!(
        e_prs_sum < e_nrs_sum * 0.8,
        "PRS (avg {:.2}) must clearly beat NRS (avg {:.2})",
        e_prs_sum / 3.0,
        e_nrs_sum / 3.0
    );
}

#[test]
fn scale_model_ipc_series_is_monotone_toward_target_for_streamers() {
    // For a bandwidth-bound streamer under PRS, the single-core scale
    // model over-predicts and the multi-core scale models approach the
    // target value (the trend regression exploits).
    let cfg = small_experiment();
    let data = collect_homogeneous(&mut DirectSim, &cfg, &subset(&["lbm_r"])).unwrap();
    let d = &data[0];
    assert!(
        d.ss.ipc >= d.target_ipc * 0.8,
        "1-core model should not grossly underpredict"
    );
    let ipc2 = d.ms_ipc.iter().find(|(c, _)| *c == 2).unwrap().1;
    assert!(
        (ipc2 - d.target_ipc).abs() <= (d.ss.ipc - d.target_ipc).abs() + 0.05,
        "2-core scale model should be at least as close as 1-core"
    );
}

#[test]
fn twentynine_benchmarks_all_simulate() {
    // Every profile must drive the simulator without panicking, on a tiny
    // budget single-core scale model.
    let target = SystemConfig::target_32core();
    let machine = scale_config(&target, 1, ScalingPolicy::prs());
    for b in suite() {
        let mix = sms_workloads::mix::MixSpec::homogeneous(b.name, 1, 1);
        let mut sys = sms_sim::system::MulticoreSystem::new(machine.clone(), mix.sources())
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let r = sys
            .run(RunSpec {
                warmup_instructions: 2_000,
                measure_instructions: 20_000,
            })
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert!(r.cores[0].ipc > 0.0, "{} produced zero IPC", b.name);
        assert!(r.cores[0].ipc < 4.0, "{} exceeded issue width", b.name);
    }
}
