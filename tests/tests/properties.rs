//! Property-based tests over the cross-crate invariants: scale-model
//! construction, workload generation, queue models and curve fitting.

use proptest::prelude::*;
use sms_core::scaling::{mesh_dims, scale_config, MemBwScaling, ScalingPolicy};
use sms_ml::fit::{fit_curve, CurveModel};
use sms_sim::config::SystemConfig;
use sms_sim::queue::HistoryQueue;
use sms_sim::trace::{InstructionSource, MicroOp};
use sms_workloads::generator::SyntheticSource;
use sms_workloads::spec::suite;

fn power_of_two_cores() -> impl Strategy<Value = u32> {
    (0u32..=5).prop_map(|b| 1 << b)
}

proptest! {
    #[test]
    fn prs_preserves_per_core_shares(cores in power_of_two_cores()) {
        let target = SystemConfig::target_32core();
        let cfg = scale_config(&target, cores, ScalingPolicy::prs());
        prop_assert!(cfg.validate().is_ok());
        let llc_per_core = cfg.llc.total_capacity_bytes() / u64::from(cores);
        prop_assert_eq!(llc_per_core, 1024 * 1024);
        let bw = cfg.dram.total_bandwidth_gbps() / f64::from(cores);
        prop_assert!((bw - 4.0).abs() < 1e-9);
        let noc = cfg.noc.bisection_bandwidth_gbps() / f64::from(cores);
        prop_assert!((noc - 4.0).abs() < 1e-9);
    }

    #[test]
    fn both_dram_orders_preserve_totals(cores in power_of_two_cores()) {
        let target = SystemConfig::target_32core();
        for order in [MemBwScaling::McFirst, MemBwScaling::MbFirst] {
            let policy = ScalingPolicy { mem_bw: order, ..ScalingPolicy::prs() };
            let cfg = scale_config(&target, cores, policy);
            let total = cfg.dram.total_bandwidth_gbps();
            prop_assert!((total - 4.0 * f64::from(cores)).abs() < 1e-9,
                "{order:?} at {cores} cores gives {total}");
        }
    }

    #[test]
    fn mesh_dims_cover_cores(cores in power_of_two_cores()) {
        let (cols, rows) = mesh_dims(cores);
        prop_assert_eq!(cols * rows, cores);
        prop_assert!(cols >= rows);
        prop_assert!(cols <= 2 * rows);
    }

    #[test]
    fn generator_respects_instance_window(
        bench_idx in 0usize..29,
        instance in 0u32..8,
        seed in 0u64..1000,
    ) {
        let profile = suite()[bench_idx].clone();
        let mut src = SyntheticSource::new(profile, instance, seed);
        let base = u64::from(instance) << 40;
        let end = base + (1u64 << 40);
        for _ in 0..2000 {
            match src.next_op() {
                MicroOp::Load { addr, .. } | MicroOp::Store { addr } => {
                    prop_assert!(addr >= base && addr < end,
                        "address {addr:#x} outside instance window");
                }
                MicroOp::Compute { count } => prop_assert!(count > 0),
                MicroOp::Branch { .. } => {}
            }
        }
        let code = src.code_addr();
        prop_assert!(code >= base && code < end);
    }

    #[test]
    fn history_queue_wait_is_nonnegative_and_bounded(
        arrivals in proptest::collection::vec((0u32..100_000, 1u32..100), 1..200)
    ) {
        let mut q = HistoryQueue::new();
        let mut total_service = 0.0;
        for (count, (now, service)) in arrivals.into_iter().enumerate() {
            let count = count as u32;
            let wait = q.request(f64::from(now), f64::from(service));
            prop_assert!(wait >= 0.0);
            // Worst case, the request waits behind all prior service plus
            // one sub-`service` gap skipped per prior busy interval (gaps
            // it cannot fit into).
            let bound = total_service + f64::from(count + 1) * f64::from(service);
            prop_assert!(wait <= bound + 1e-9,
                "wait {wait} exceeds bound {bound}");
            total_service += f64::from(service);
        }
    }

    #[test]
    fn curve_fits_interpolate_exact_families(a in 0.1f64..5.0, b in 0.1f64..5.0) {
        let xs = [2.0f64, 4.0, 8.0, 16.0];
        // Logarithmic family recovered exactly.
        let ys: Vec<f64> = xs.iter().map(|&x| a * x.ln() + b).collect();
        let c = fit_curve(CurveModel::Logarithmic, &xs, &ys).unwrap();
        prop_assert!((c.a - a).abs() < 1e-9 && (c.b - b).abs() < 1e-9);
        // Power family recovered exactly.
        let ys: Vec<f64> = xs.iter().map(|&x| a * x.powf(-b)).collect();
        let c = fit_curve(CurveModel::Power, &xs, &ys).unwrap();
        prop_assert!((c.a - a).abs() < 1e-6 && (c.b + b).abs() < 1e-9);
    }

    #[test]
    fn instruction_mix_fractions_sum_to_one(bench_idx in 0usize..29) {
        let p = suite()[bench_idx].clone();
        prop_assert!(p.is_consistent());
        let frac = p.load_frac + p.store_frac + p.branch_frac;
        prop_assert!(frac > 0.0 && frac < 1.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn short_simulations_never_panic(
        bench_idx in 0usize..29,
        cores_bits in 0u32..3,
        seed in 0u64..50,
    ) {
        let cores = 1u32 << cores_bits;
        let target = SystemConfig::target_32core();
        let machine = scale_config(&target, cores, ScalingPolicy::prs());
        let name = suite()[bench_idx].name;
        let mix = sms_workloads::mix::MixSpec::homogeneous(name, cores as usize, seed);
        let mut sys = sms_sim::system::MulticoreSystem::new(machine, mix.sources()).unwrap();
        let r = sys.run(sms_sim::system::RunSpec {
            warmup_instructions: 1_000,
            measure_instructions: 10_000,
        }).unwrap();
        for c in &r.cores {
            prop_assert!(c.ipc > 0.0 && c.ipc <= 4.0);
        }
    }
}
