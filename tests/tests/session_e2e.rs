//! End-to-end test of the high-level session API on the real simulator:
//! train on a small suite against a reduced (8-core) target, then predict
//! held-out benchmarks and sanity-check against the simulated truth.

use sms_core::pipeline::{DirectSim, ExperimentConfig, Simulate};
use sms_core::scaling::{target_config, ScalingPolicy};
use sms_core::session::ScaleModelSession;
use sms_core::FeatureMode;
use sms_sim::system::RunSpec;
use sms_workloads::mix::MixSpec;
use sms_workloads::spec::by_name;

#[test]
fn session_end_to_end_on_real_simulator() {
    let target = target_config(8);
    let cfg = ExperimentConfig {
        target: target.clone(),
        policy: ScalingPolicy::prs(),
        ms_cores: vec![2, 4],
        spec: RunSpec {
            warmup_instructions: 20_000,
            measure_instructions: 100_000,
        },
        mode: FeatureMode::IpcBandwidth,
        seed: 43,
    };

    let training: Vec<_> = [
        "leela_r",
        "x264_r",
        "namd_r",
        "perlbench_r",
        "blender_r",
        "wrf_r",
        "omnetpp_r",
        "bwaves_r",
        "roms_r",
        "gcc_r",
        "imagick_r",
        "cam4_r",
    ]
    .iter()
    .map(|n| by_name(n).expect("known"))
    .collect();

    let session = ScaleModelSession::train(&mut DirectSim, cfg.clone(), &training).unwrap();

    for name in ["xz_r", "fotonik3d_r", "nab_r"] {
        let profile = by_name(name).expect("known");
        let pred = session.predict(&mut DirectSim, &profile).unwrap();
        assert!(pred.target_ipc.is_finite() && pred.target_ipc > 0.0);

        // Simulate the 8-core truth and require a sane error bound: the
        // budget is tiny, so allow generous slack; the point is that the
        // whole chain is wired correctly, not peak accuracy.
        let mix = MixSpec::homogeneous(name, 8, cfg.seed);
        let truth_run = DirectSim.run_mix(&target, &mix, cfg.spec).unwrap();
        let truth =
            truth_run.cores.iter().map(|c| c.ipc).sum::<f64>() / truth_run.cores.len() as f64;
        let err = (pred.target_ipc - truth).abs() / truth;
        assert!(
            err < 0.6,
            "{name}: prediction {:.3} vs truth {truth:.3} (err {err:.2})",
            pred.target_ipc
        );
    }
}

#[test]
fn session_predictions_are_deterministic() {
    let cfg = ExperimentConfig {
        target: target_config(4),
        ms_cores: vec![2, 4],
        spec: RunSpec {
            warmup_instructions: 5_000,
            measure_instructions: 30_000,
        },
        ..ExperimentConfig::default()
    };
    let training: Vec<_> = ["leela_r", "xz_r", "roms_r", "namd_r", "gcc_r"]
        .iter()
        .map(|n| by_name(n).expect("known"))
        .collect();
    let profile = by_name("wrf_r").unwrap();

    let s1 = ScaleModelSession::train(&mut DirectSim, cfg.clone(), &training).unwrap();
    let s2 = ScaleModelSession::train(&mut DirectSim, cfg, &training).unwrap();
    let p1 = s1.predict(&mut DirectSim, &profile).unwrap();
    let p2 = s2.predict(&mut DirectSim, &profile).unwrap();
    assert_eq!(p1.target_ipc, p2.target_ipc);
    assert_eq!(p1.ss, p2.ss);
}

#[test]
fn session_uses_only_scale_model_machines() {
    // Recording wrapper: assert no machine as large as the target is ever
    // simulated during training or prediction.
    struct Recording(Vec<u32>);
    impl Simulate for Recording {
        fn run_mix(
            &mut self,
            cfg: &sms_sim::config::SystemConfig,
            mix: &MixSpec,
            spec: RunSpec,
        ) -> Result<sms_sim::stats::SimResult, sms_sim::error::SimError> {
            self.0.push(cfg.num_cores);
            DirectSim.run_mix(cfg, mix, spec)
        }
    }

    let target = target_config(8);
    let cfg = ExperimentConfig {
        target,
        ms_cores: vec![2, 4],
        spec: RunSpec {
            warmup_instructions: 2_000,
            measure_instructions: 15_000,
        },
        ..ExperimentConfig::default()
    };
    let training: Vec<_> = ["leela_r", "xz_r", "roms_r"]
        .iter()
        .map(|n| by_name(n).expect("known"))
        .collect();

    let mut rec = Recording(Vec::new());
    let session = ScaleModelSession::train(&mut rec, cfg, &training).unwrap();
    let _ = session
        .predict(&mut rec, &by_name("wrf_r").unwrap())
        .unwrap();
    assert!(
        rec.0.iter().all(|&c| c < 8),
        "the 8-core target must never be simulated: {:?}",
        rec.0
    );
}
