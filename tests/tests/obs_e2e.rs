//! End-to-end observability checks: a tiny sweep run with span tracing
//! and timelines enabled must leave behind a valid Chrome trace, per-run
//! timeline files, and a manifest embedding the executor's metrics
//! registry; and a booted prediction server must answer `GET /metrics`
//! in the Prometheus text exposition format.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

use sms_cli::{run, Args};
use sms_serve::{serve, ModelRegistry, ServerConfig};

fn cli(v: &[&str]) -> String {
    let raw: Vec<String> = v.iter().map(|s| (*s).to_owned()).collect();
    run(&Args::parse(&raw).expect("args parse")).expect("command succeeds")
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("sms-obs-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn sweep_with_spans_and_timelines_leaves_full_observability_artifacts() {
    let results = tmpdir("sweep");
    let out = cli(&[
        "sweep",
        "--bench",
        "leela_r",
        "--target-cores",
        "2",
        "--budget",
        "20000",
        "--results",
        results.to_str().unwrap(),
        "--label",
        "obs-e2e",
        "--timelines",
        "--spans",
    ]);
    assert!(out.contains("obs-e2e"), "{out}");

    // The Chrome trace parses, is non-empty, and contains the executor's
    // spans with microsecond timestamps.
    let trace_path = results.join("cache/traces/obs-e2e.json");
    assert!(trace_path.exists(), "trace not written: {out}");
    let trace: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&trace_path).unwrap()).unwrap();
    assert_eq!(trace["displayTimeUnit"], "ms");
    let events = trace["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty(), "trace must record events");
    for e in events {
        assert!(e["name"].is_string());
        assert!(e["ph"].is_string());
        assert!(e["ts"].is_u64() || e["ts"].is_i64());
        assert_eq!(e["pid"], 1);
    }
    let names: Vec<&str> = events.iter().filter_map(|e| e["name"].as_str()).collect();
    assert!(names.contains(&"execute_plan"), "{names:?}");
    assert!(names.contains(&"run_one"), "{names:?}");

    // Every simulated run left a timeline with monotone epochs.
    let tl_dir = results.join("cache/timelines");
    let tl_files: Vec<PathBuf> = std::fs::read_dir(&tl_dir)
        .expect("timelines dir exists")
        .flatten()
        .map(|e| e.path())
        .collect();
    assert_eq!(tl_files.len(), 2, "one file per simulated run");
    let tl: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&tl_files[0]).unwrap()).unwrap();
    let samples = tl["timeline"]["samples"].as_array().unwrap();
    assert!(!samples.is_empty());
    let cycles: Vec<u64> = samples
        .iter()
        .map(|s| s["cycle"].as_u64().unwrap())
        .collect();
    assert!(cycles.windows(2).all(|w| w[0] < w[1]), "{cycles:?}");

    // And `sms timeline` renders the epochs.
    let rendered = cli(&["timeline", "--path", tl_files[0].to_str().unwrap()]);
    assert!(rendered.contains("epoch"), "{rendered}");
    assert!(rendered.contains("IPC"), "{rendered}");

    // The v3 manifest embeds the executor's registry snapshot.
    let manifest: serde_json::Value = serde_json::from_str(
        &std::fs::read_to_string(results.join("cache/manifests/obs-e2e.json")).unwrap(),
    )
    .unwrap();
    assert_eq!(manifest["schema_version"], 3);
    let registry = manifest["registry"]
        .as_object()
        .expect("registry snapshot present");
    assert!(
        registry.contains_key("sms_bench_runs_total"),
        "{registry:?}"
    );
    let ok_runs: f64 = registry["sms_bench_runs_total"]["samples"]
        .as_array()
        .unwrap()
        .iter()
        .filter(|s| s["labels"][0] == "ok")
        .map(|s| s["value"].as_f64().unwrap())
        .sum();
    assert_eq!(ok_runs, 2.0);

    sms_obs::tracer().set_enabled(false);
    let _ = std::fs::remove_dir_all(&results);
}

/// Minimal HTTP/1.1 client: one request, read until the server closes.
fn http_get(addr: SocketAddr, path: &str) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let request = format!("GET {path} HTTP/1.1\r\nhost: obs-e2e\r\ncontent-length: 0\r\n\r\n");
    stream.write_all(request.as_bytes()).unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let (head, body) = text.split_once("\r\n\r\n").expect("header/body split");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .unwrap()
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let headers = lines
        .filter_map(|l| l.split_once(": "))
        .map(|(k, v)| (k.to_ascii_lowercase(), v.to_owned()))
        .collect();
    (status, headers, body.to_owned())
}

#[test]
fn booted_server_scrapes_as_prometheus_text() {
    let handle = serve(
        ModelRegistry::in_memory(),
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .expect("server boots");
    let addr = handle.addr();

    // Generate a little traffic so counters are non-zero.
    let (health_status, _, _) = http_get(addr, "/healthz");
    assert_eq!(health_status, 200);
    let (miss_status, _, _) = http_get(addr, "/nope");
    assert_eq!(miss_status, 404);

    let (status, headers, body) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    let content_type = headers
        .iter()
        .find(|(k, _)| k == "content-type")
        .map(|(_, v)| v.as_str());
    assert_eq!(content_type, Some("text/plain; version=0.0.4"));

    // Prometheus exposition format: HELP/TYPE headers and sample lines.
    assert!(body.contains("# HELP sms_serve_requests_total"), "{body}");
    assert!(
        body.contains("# TYPE sms_serve_requests_total counter"),
        "{body}"
    );
    assert!(
        body.contains("# TYPE sms_serve_queue_depth gauge"),
        "{body}"
    );
    assert!(
        body.contains("# TYPE sms_serve_predict_latency_micros histogram"),
        "{body}"
    );
    assert!(
        body.contains(r#"sms_serve_endpoint_requests_total{endpoint="healthz"} 1"#),
        "{body}"
    );
    assert!(body.contains("sms_serve_bad_requests_total 1"), "{body}");
    // Every non-comment line is `name[{labels}] value`.
    for line in body
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (name, value) = line.rsplit_once(' ').expect("sample line");
        assert!(!name.is_empty(), "{line}");
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf" || value == "-Inf" || value == "NaN",
            "unparseable sample value in {line:?}"
        );
    }

    handle.shutdown_and_join();
}
